package noalloc

// The static zero-alloc gate has a hole if someone simply deletes an
// //aggvet:noalloc annotation: the analyzer goes quiet and the contract
// silently evaporates, leaving only the runtime pins. `aggvet
// -require-noalloc` closes it — scripts/lint.sh pins the exact
// functions that must stay annotated (the ones TestAllocsPin* measures),
// so removing an annotation fails `make lint` just as surely as
// introducing an allocation does.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"sort"
	"strings"
)

// Require checks each spec, of the form
//
//	<dir>:<Func>[,<Func>...]
//
// asserting that every named function declared in the package directory
// carries the //aggvet:noalloc annotation. It prints one line per
// verified function to w and returns an error naming every function
// that is missing, unannotated, or ambiguous.
func Require(w io.Writer, specs ...string) error {
	if len(specs) == 0 {
		return fmt.Errorf("no specs: want <dir>:<Func>[,<Func>...]")
	}
	var failures []string
	for _, spec := range specs {
		dir, funcs, ok := strings.Cut(spec, ":")
		if !ok || dir == "" || funcs == "" {
			return fmt.Errorf("malformed spec %q: want <dir>:<Func>[,<Func>...]", spec)
		}
		annotated, declared, err := scanDir(dir)
		if err != nil {
			return fmt.Errorf("spec %q: %w", spec, err)
		}
		for _, name := range strings.Split(funcs, ",") {
			name = strings.TrimSpace(name)
			switch {
			case name == "":
				return fmt.Errorf("malformed spec %q: empty function name", spec)
			case annotated[name]:
				fmt.Fprintf(w, "%s: %s is //aggvet:noalloc\n", dir, name)
			case declared[name]:
				failures = append(failures, fmt.Sprintf("%s: %s has no //aggvet:noalloc annotation", dir, name))
			default:
				failures = append(failures, fmt.Sprintf("%s: no function named %s", dir, name))
			}
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("required //aggvet:noalloc annotations missing:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// scanDir parses the package directory (tests excluded) and returns the
// sets of annotated and declared function names. Methods count by their
// bare name: the pins name functions uniquely within their package.
func scanDir(dir string) (annotated, declared map[string]bool, err error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	annotated = map[string]bool{}
	declared = map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				declared[decl.Name.Name] = true
				if isAnnotated(decl) {
					annotated[decl.Name.Name] = true
				}
			}
		}
	}
	return annotated, declared, nil
}
