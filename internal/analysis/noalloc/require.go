package noalloc

// The static zero-alloc gate has a hole if someone simply deletes an
// //aggvet:noalloc annotation: the analyzer goes quiet and the contract
// silently evaporates, leaving only the runtime pins. `aggvet
// -require-noalloc` closes it — scripts/lint.sh pins the exact
// functions that must stay annotated (the ones TestAllocsPin* measures),
// so removing an annotation fails `make lint` just as surely as
// introducing an allocation does.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"sort"
	"strings"
)

// Require checks each spec, of the form
//
//	<dir>:<Func>[,<Func>...]
//
// asserting that every named function declared in the package directory
// carries the //aggvet:noalloc annotation. A name may be receiver-
// qualified — Table.UpdateRaw pins the method on that type only — and
// MUST be once two types declare the same method name: a bare name
// matching several functions is rejected as ambiguous rather than
// letting any one annotation satisfy all pins. It prints one line per
// verified function to w and returns an error naming every function
// that is missing, unannotated, or ambiguous.
func Require(w io.Writer, specs ...string) error {
	if len(specs) == 0 {
		return fmt.Errorf("no specs: want <dir>:<Func>[,<Func>...]")
	}
	var failures []string
	for _, spec := range specs {
		dir, funcs, ok := strings.Cut(spec, ":")
		if !ok || dir == "" || funcs == "" {
			return fmt.Errorf("malformed spec %q: want <dir>:<Func>[,<Func>...]", spec)
		}
		annotated, declared, err := scanDir(dir)
		if err != nil {
			return fmt.Errorf("spec %q: %w", spec, err)
		}
		for _, name := range strings.Split(funcs, ",") {
			name = strings.TrimSpace(name)
			switch {
			case name == "":
				return fmt.Errorf("malformed spec %q: empty function name", spec)
			case !strings.Contains(name, ".") && declared[name] > 1:
				failures = append(failures, fmt.Sprintf(
					"%s: %s names %d functions — qualify it as Type.%s", dir, name, declared[name], name))
			case annotated[name] > 0:
				fmt.Fprintf(w, "%s: %s is //aggvet:noalloc\n", dir, name)
			case declared[name] > 0:
				failures = append(failures, fmt.Sprintf("%s: %s has no //aggvet:noalloc annotation", dir, name))
			default:
				failures = append(failures, fmt.Sprintf("%s: no function named %s", dir, name))
			}
		}
	}
	if len(failures) > 0 {
		sort.Strings(failures)
		return fmt.Errorf("required //aggvet:noalloc annotations missing:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// scanDir parses the package directory (tests excluded) and returns how
// many functions declare (and annotate) each name. Every method is
// recorded under both its bare name and its receiver-qualified
// Type.Method name; Require uses the bare-name count to detect
// ambiguous pins.
func scanDir(dir string) (annotated, declared map[string]int, err error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	annotated = map[string]int{}
	declared = map[string]int{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				names := []string{decl.Name.Name}
				if recv := recvTypeName(decl); recv != "" {
					names = append(names, recv+"."+decl.Name.Name)
				}
				for _, n := range names {
					declared[n]++
					if isAnnotated(decl) {
						annotated[n]++
					}
				}
			}
		}
	}
	return annotated, declared, nil
}

// recvTypeName returns the bare receiver type name of a method ("" for
// plain functions), unwrapping pointers and type-parameter brackets so
// (*Shared) and (*Tree[K]) pin as Shared and Tree.
func recvTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
