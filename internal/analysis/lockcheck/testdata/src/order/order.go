// Package order exercises the cross-function lock-order graph: edges
// are recorded when a lock is acquired — directly or through a
// summarized call — while another is held, and any cycle among the
// instance-independent lock identities is a potential deadlock.
package order

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// ab and ba acquire the two locks in opposite orders: the classic
// two-goroutine deadlock. Reported once, at the lexically first edge.
func ab(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `potential deadlock: a\.mu and b\.mu are acquired in conflicting orders`
	y.mu.Unlock()
	x.mu.Unlock()
}

func ba(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

func lockD(y *d) {
	y.mu.Lock()
	y.mu.Unlock()
}

// cThenD takes d.mu through a callee while holding c.mu — the edge
// comes from lockD's bottom-up acquire summary, not its text.
func cThenD(x *c, y *d) {
	x.mu.Lock()
	lockD(y) // want `potential deadlock: c\.mu and d\.mu are acquired in conflicting orders`
	x.mu.Unlock()
}

func dThenC(x *c, y *d) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

type node struct {
	mu   sync.Mutex
	coin int
}

// transfer locks two instances of the same lock field with no global
// order — the textbook account-transfer deadlock.
func transfer(from, to *node, n int) {
	from.mu.Lock()
	to.mu.Lock() // want `potential deadlock: node\.mu may be acquired while another instance of node\.mu is held`
	from.coin -= n
	to.coin += n
	to.mu.Unlock()
	from.mu.Unlock()
}

type p struct{ mu sync.Mutex }
type q struct{ mu sync.Mutex }

// Consistent nesting p.mu → q.mu everywhere: edges but no cycle, no
// diagnostics.
func pqOne(x *p, y *q) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func pqTwo(x *p, y *q) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

type spawnerT struct{ mu sync.Mutex }
type workerT struct{ mu sync.Mutex }

// Goroutine boundaries cut lock-order edges: the spawned work is not
// ordered after the spawner's held lock, so this opposite "order"
// through go is not a cycle.
func spawner(s *spawnerT, w *workerT) {
	s.mu.Lock()
	go func() {
		w.mu.Lock()
		w.mu.Unlock()
	}()
	s.mu.Unlock()
}

func worker(s *spawnerT, w *workerT) {
	w.mu.Lock()
	go deep(s)
	w.mu.Unlock()
}

func deep(s *spawnerT) {
	s.mu.Lock()
	s.mu.Unlock()
}
