// Package a exercises the intraprocedural lockcheck rules: balance on
// all paths, defer discharge, re-lock, unlock-of-unheld, RWMutex mode
// mismatches, TryLock branch refinement, //aggvet:holds seeding, and
// the //aggvet:allow escape hatch.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type table struct {
	rw sync.RWMutex
	m  map[string]int
}

// --- clean idioms: no diagnostics ---

func balanced(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func deferredClosure(c *counter) int {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return c.n
}

func branchBalanced(c *counter, fail bool) int {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func readThenWrite(t *table, k string) {
	t.rw.RLock()
	n := t.m[k]
	t.rw.RUnlock()
	t.rw.Lock()
	t.m[k] = n + 1
	t.rw.Unlock()
}

func tryFast(c *counter) bool {
	if !c.mu.TryLock() {
		return false
	}
	c.n++
	c.mu.Unlock()
	return true
}

func tryDeferred(c *counter) bool {
	if !c.mu.TryLock() {
		return false
	}
	defer c.mu.Unlock()
	c.n++
	return true
}

// bump runs with the caller's lock held: the seeded fact keeps the
// field work legal and charges the release to the caller.
//
//aggvet:holds c.mu
func bump(c *counter) {
	c.n++
}

// release is the locked-helper handoff: called under c.mu, releases it.
//
//aggvet:holds c.mu
func release(c *counter) {
	c.mu.Unlock()
}

func viaHelpers(c *counter) {
	c.mu.Lock()
	bump(c)
	c.mu.Unlock()
}

func spawned(c *counter) {
	c.mu.Lock()
	go func() {
		// Fresh goroutine: inherits no locks, so this Lock is not a
		// re-lock and its balance is checked independently.
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
	c.mu.Unlock()
}

func panicPath(c *counter, bad bool) int {
	c.mu.Lock()
	if bad {
		panic("invariant")
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// --- violations ---

func leakOnBranch(c *counter, fail bool) int {
	c.mu.Lock() // want `c\.mu acquired here is not released on every path`
	if fail {
		return 0
	}
	c.mu.Unlock()
	return c.n
}

func leakEverywhere(c *counter) {
	c.mu.Lock() // want `c\.mu acquired here is not released on every path`
	c.n++
}

func tryLeak(c *counter) bool {
	if !c.mu.TryLock() { // want `c\.mu acquired here is not released on every path`
		return false
	}
	c.n++
	return true
}

func relock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want `c\.mu\.Lock while c\.mu may already be held .*not reentrant`
	c.n++
	c.mu.Unlock()
}

func unheldUnlock(c *counter) {
	c.mu.Unlock() // want `c\.mu\.Unlock but c\.mu is not held on any path`
}

func doubleUnlock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.mu.Unlock() // want `double unlock: c\.mu is already scheduled for release by the defer`
}

func wrongModeUnlock(t *table, k string) int {
	t.rw.RLock()
	n := t.m[k]
	t.rw.Unlock() // want `t\.rw\.Unlock but t\.rw is read-locked .*use RUnlock`
	return n
}

func wrongModeRUnlock(t *table, k string) {
	t.rw.Lock()
	t.m[k] = 1
	t.rw.RUnlock() // want `t\.rw\.RUnlock but t\.rw is write-locked .*use Unlock`
}

func rlockUnderWrite(t *table, k string) int {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.rw.RLock() // want `t\.rw\.RLock while t\.rw is write-locked`
	n := t.m[k]
	t.rw.RUnlock()
	return n
}

//aggvet:holds c.n
func badHoldsTarget(c *counter) { // want `malformed //aggvet:holds directive on badHoldsTarget`
	c.n++
}

//aggvet:holds q.mu
func badHoldsRoot(c *counter) { // want `malformed //aggvet:holds directive on badHoldsRoot`
	c.n++
}

// --- escape hatch ---

func handoff(c *counter) {
	// The release happens inside release(c): a cross-function handoff
	// the per-body may-analysis cannot see, so the acquisition site
	// carries a rationaled allow.
	c.mu.Lock() //aggvet:allow lockcheck -- released by the release(c) helper below; handoff is beyond the per-body analysis
	c.n++
	release(c)
}

// --- per-iteration locking inside a range loop ---
//
// Body ops replay only from the body block. Regression: the RangeStmt
// head marker used to re-apply the body's Lock/Unlock at the loop
// head, corrupting the head facts.

func perIterLock(c *counter, keys []int) {
	for range keys {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

func leakInLoop(c *counter, keys []int) {
	for _, k := range keys {
		if k > 0 {
			// The next iteration may re-lock the still-held mutex (the
			// back edge carries the fact), so both rules fire.
			c.mu.Lock() // want `c\.mu acquired here is not released on every path` `c\.mu\.Lock while c\.mu may already be held`
			continue
		}
	}
}
