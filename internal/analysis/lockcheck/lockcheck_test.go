package lockcheck_test

import (
	"testing"

	"parallelagg/internal/analysis/analysistest"
	"parallelagg/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer,
		"a",
		"order",
	)
}
