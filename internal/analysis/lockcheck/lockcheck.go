// Package lockcheck enforces lock discipline over sync.Mutex and
// sync.RWMutex: every acquisition must reach a release (or a defer of
// one) on all paths, a held lock must not be re-acquired by the same
// goroutine, a release must match a possible acquisition in mode and
// in fact, and — across functions, via call-graph summaries — locks
// must be acquired in a consistent global order, or two goroutines
// interleaving the conflicting orders deadlock.
//
// The intraprocedural rules ride the shared lock-set engine
// (internal/analysis/lockset): a forward may-analysis whose facts say
// "this mutex, reached as root.path, may be held here". The rules, in
// the engine's terms:
//
//   - leak: a non-deferred, non-seeded fact reaching function exit
//     means some path acquired the lock and never released it;
//   - re-lock: Lock (or RLock while write-held) of a chain already in
//     the lock-set is a self-deadlock — sync mutexes are not reentrant;
//   - bad unlock: Unlock/RUnlock of a chain with no fact at all means
//     no path holds the lock here (may-analysis: an empty set is a
//     universal claim), and a mode mismatch (Unlock of a read-held
//     RWMutex or RUnlock of a write-held one) corrupts the mutex state.
//
// The lock-order graph is interprocedural within the package: every
// function gets a bottom-up summary of the lock identities it may
// acquire (transitively, same-goroutine; unknown callees contribute
// nothing — the conservative direction for an order check is missing
// edges, never inventing them). During the replay pass an edge A → B
// is recorded whenever B is acquired — directly or via a summarized
// call — while A is held. A cycle among the edges means the package
// admits conflicting acquisition orders; each strongly connected
// component is reported once, at its lexically first edge. Lock
// identities are instance-independent (the struct FIELD, not the
// variable holding the struct), so `a.mu before b.other` and
// `x.other before y.mu` collide no matter the spelling; an edge from a
// field to itself through two different roots is reported too — two
// instances of one type locked with no global order is the textbook
// account-transfer deadlock.
//
// Functions running with a caller-held lock declare it with
// "//aggvet:holds recv.mu" (the Clang REQUIRES annotation): the chain
// seeds the entry lock-set, so guarded work inside checks out and the
// missing release is charged to the caller, not the helper.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"parallelagg/internal/analysis"
	"parallelagg/internal/analysis/cfg"
	"parallelagg/internal/analysis/lockset"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "enforce sync.Mutex/RWMutex lock discipline\n\n" +
		"Every Lock/RLock must reach an Unlock/RUnlock (or defer one) on all\n" +
		"paths; a held lock must not be re-acquired; a release must match a\n" +
		"held acquisition in mode; and the package's locks must be acquired\n" +
		"in one consistent order — a cycle in the acquired-while-holding\n" +
		"graph is a potential deadlock. Helpers running under a caller's\n" +
		"lock declare it with //aggvet:holds recv.mu.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	graph := analysis.BuildCallGraph(pass.Files, pass.TypesInfo)
	c := &checker{
		pass:   pass,
		info:   pass.TypesInfo,
		graph:  graph,
		owners: fieldOwners(pass.Files, pass.TypesInfo),
		edges:  map[edge]token.Pos{},
		byID:   map[string]types.Object{},
	}
	c.sums = c.acquireSummaries()

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			seed, bad := lockset.HoldsSeed(c.info, decl)
			for range bad {
				// Report at the declaration, not the comment: directives
				// are line comments, so a fixture cannot put a want
				// expectation on the directive's own line.
				pass.Reportf(decl.Name.Pos(), "malformed //aggvet:holds directive on %s: want \"//aggvet:holds <recv-or-param>.<mutex-field>\" naming a sync.Mutex or sync.RWMutex chain",
					decl.Name.Name)
			}
			lockset.Analyze(c.info, decl, seed, c.checkBody)
		}
	}
	c.reportCycles()
	return nil
}

type checker struct {
	pass   *analysis.Pass
	info   *types.Info
	graph  *analysis.CallGraph
	owners map[types.Object]string

	// sums maps each function to the encoded set of lock identities it
	// may acquire, transitively on its own goroutine.
	sums map[*analysis.FuncNode]string
	// byID decodes summary identity strings back to objects.
	byID map[string]types.Object

	// edges records "to may be acquired while from is held", keyed to
	// dedupe, valued with the lexically first witness position.
	edges map[edge]token.Pos

	// reported dedupes leak diagnostics by acquisition position: one
	// acquisition can reach exit in several bodies' replays.
	reported map[token.Pos]bool
}

type edge struct{ from, to types.Object }

// checkBody runs the reporting replay over one solved body.
func (c *checker) checkBody(b *lockset.Body) {
	for _, blk := range b.Graph.Blocks {
		facts := cfg.Facts[lockset.Fact]{}
		for f := range b.In[blk] {
			facts.Add(f)
		}
		for _, n := range blk.Stmts {
			for _, op := range lockset.OpsIn(c.info, n) {
				if op.Root != nil {
					c.checkOp(op, facts)
					c.recordAcquireEdges(op, facts)
				}
				lockset.Apply(op, facts)
			}
			c.recordCallEdges(n, facts)
		}
	}

	// Leak check: a plain fact at exit was acquired on some path and
	// released on none of its continuations. Deferred facts are
	// discharged; seeded facts belong to the caller.
	if c.reported == nil {
		c.reported = map[token.Pos]bool{}
	}
	for f := range b.Exit() {
		if f.Deferred || f.Seeded || c.reported[f.Pos] {
			continue
		}
		c.reported[f.Pos] = true
		c.pass.Reportf(f.Pos, "%s acquired here is not released on every path (missing Unlock or defer)", f.Chain())
	}
}

// checkOp reports re-lock and bad-unlock at one mutex operation, given
// the facts just before it executes.
func (c *checker) checkOp(op lockset.Op, facts cfg.Facts[lockset.Fact]) {
	switch {
	case op.Kind == lockset.Lock:
		if hit, held := lockset.Held(facts, op.Root, op.Path); held {
			c.pass.Reportf(op.Call.Pos(), "%s.Lock while %s may already be held (acquired at line %d): sync mutexes are not reentrant, this self-deadlocks",
				op.Chain(), op.Chain(), c.line(hit.Pos))
		}
	case op.Kind == lockset.RLock:
		// Recursive RLock is legal (if inadvisable); RLock under a held
		// WRITE lock on the same mutex self-deadlocks.
		if hit, held := lockset.Held(facts, op.Root, op.Path); held && !hit.Read {
			c.pass.Reportf(op.Call.Pos(), "%s.RLock while %s is write-locked (acquired at line %d): this self-deadlocks",
				op.Chain(), op.Chain(), c.line(hit.Pos))
		}
	case op.Kind.Releases() && !op.Deferred:
		hit, held := lockset.Held(facts, op.Root, op.Path)
		if !held {
			c.pass.Reportf(op.Call.Pos(), "%s.%s but %s is not held on any path reaching this point",
				op.Chain(), op.Kind, op.Chain())
			return
		}
		if allDeferred(facts, op) {
			c.pass.Reportf(op.Call.Pos(), "double unlock: %s is already scheduled for release by the defer at line %d",
				op.Chain(), c.line(hit.Pos))
			return
		}
		if op.Kind == lockset.Unlock && hit.Read && !anyMode(facts, op, false) {
			c.pass.Reportf(op.Call.Pos(), "%s.Unlock but %s is read-locked (RLock at line %d): use RUnlock",
				op.Chain(), op.Chain(), c.line(hit.Pos))
		}
		if op.Kind == lockset.RUnlock && !hit.Read && !anyMode(facts, op, true) {
			c.pass.Reportf(op.Call.Pos(), "%s.RUnlock but %s is write-locked (Lock at line %d): use Unlock",
				op.Chain(), op.Chain(), c.line(hit.Pos))
		}
	}
}

// allDeferred reports whether every fact matching op's chain is a
// scheduled defer release — an explicit Unlock then releases a mutex
// the defer will release again.
func allDeferred(facts cfg.Facts[lockset.Fact], op lockset.Op) bool {
	for f := range facts {
		if f.Root == op.Root && f.Path == op.Path && !f.Deferred {
			return false
		}
	}
	return true
}

// anyMode reports whether facts hold op's chain in the given mode
// (read=true for RLock-mode facts).
func anyMode(facts cfg.Facts[lockset.Fact], op lockset.Op, read bool) bool {
	for f := range facts {
		if f.Root == op.Root && f.Path == op.Path && f.Read == read {
			return true
		}
	}
	return false
}

func (c *checker) line(pos token.Pos) int { return c.pass.Fset.Position(pos).Line }

// recordAcquireEdges adds lock-order edges held → acquired for a
// direct acquisition (Try variants included: on their success edge the
// lock is held, so the ordering constraint is identical).
func (c *checker) recordAcquireEdges(op lockset.Op, facts cfg.Facts[lockset.Fact]) {
	if op.Abs == nil || !(op.Kind.Acquires() || op.Kind == lockset.TryLock || op.Kind == lockset.TryRLock) {
		return
	}
	for f := range facts {
		if f.Abs == nil {
			continue
		}
		if f.Root == op.Root && f.Path == op.Path {
			continue // same mutex re-lock: checkOp's territory
		}
		c.addEdge(f.Abs, op.Abs, op.Call.Pos())
	}
}

// recordCallEdges adds edges held → (callee's summarized acquisitions)
// for every resolved same-goroutine call in the node. A `go` call runs
// the callee on a fresh goroutine whose acquisitions are not ordered
// after the caller's held locks, so it contributes nothing.
func (c *checker) recordCallEdges(n ast.Node, facts cfg.Facts[lockset.Fact]) {
	if len(facts) == 0 {
		return
	}
	var goCall *ast.CallExpr
	if gs, ok := n.(*ast.GoStmt); ok {
		goCall = gs.Call
	}
	// Like OpsIn: a RangeStmt head marker contributes only its header;
	// body calls replay from the body block with per-iteration facts.
	var skipBody *ast.BlockStmt
	if rs, ok := n.(*ast.RangeStmt); ok {
		skipBody = rs.Body
	}
	analysis.WalkStack(n, func(x ast.Node, _ []ast.Node) bool {
		if skipBody != nil && x == ast.Node(skipBody) {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false // nested literal bodies replay on their own
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || call == goCall {
			return true
		}
		callee := c.graph.CalleeOf(call)
		if callee == nil {
			return true
		}
		for _, id := range decodeSum(c.sums[callee]) {
			acq := c.byID[id]
			if acq == nil {
				continue
			}
			for f := range facts {
				if f.Abs == nil {
					continue
				}
				c.addEdge(f.Abs, acq, call.Pos())
			}
		}
		return true
	})
}

func (c *checker) addEdge(from, to types.Object, pos token.Pos) {
	e := edge{from, to}
	if old, ok := c.edges[e]; !ok || pos < old {
		c.edges[e] = pos
	}
}

// acquireSummaries computes, bottom-up over the call-graph SCCs, the
// set of lock identities each function may acquire on its own
// goroutine — encoded as a sorted ";"-joined id string so summaries
// are comparable for the fixpoint. Unknown callees contribute nothing.
func (c *checker) acquireSummaries() map[*analysis.FuncNode]string {
	return analysis.Summaries(c.graph, func(n *analysis.FuncNode, get func(*analysis.FuncNode) string) string {
		ids := map[string]bool{}
		analysis.WalkStack(n.Body(), func(x ast.Node, _ []ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // its acquisitions surface via its own node's edges
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, ok := lockset.Classify(c.info, call); ok {
				if op.Abs != nil && op.Kind != lockset.Unlock && op.Kind != lockset.RUnlock {
					ids[c.idOf(op.Abs)] = true
				}
				return true
			}
			return true
		})
		for _, site := range n.Calls {
			if site.Callee == nil || site.Go {
				continue
			}
			for _, id := range decodeSum(get(site.Callee)) {
				ids[id] = true
			}
		}
		return encodeSum(ids)
	})
}

func (c *checker) idOf(obj types.Object) string {
	id := strconv.Itoa(int(obj.Pos()))
	c.byID[id] = obj
	return id
}

func encodeSum(ids map[string]bool) string {
	if len(ids) == 0 {
		return ""
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

func decodeSum(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ";")
}

// reportCycles finds strongly connected components of the lock-order
// graph and reports each once, at its lexically first edge. A
// single-node component counts only with a self-edge (two instances of
// one lock field acquired while another is held).
func (c *checker) reportCycles() {
	if len(c.edges) == 0 {
		return
	}
	// Deterministic adjacency: nodes and edges sorted by position.
	adj := map[types.Object][]types.Object{}
	var nodes []types.Object
	seen := map[types.Object]bool{}
	ordered := make([]edge, 0, len(c.edges))
	for e := range c.edges {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if c.edges[ordered[i]] != c.edges[ordered[j]] {
			return c.edges[ordered[i]] < c.edges[ordered[j]]
		}
		return ordered[i].to.Pos() < ordered[j].to.Pos()
	})
	for _, e := range ordered {
		adj[e.from] = append(adj[e.from], e.to)
		for _, o := range []types.Object{e.from, e.to} {
			if !seen[o] {
				seen[o] = true
				nodes = append(nodes, o)
			}
		}
	}

	for _, comp := range sccs(nodes, adj) {
		inComp := map[types.Object]bool{}
		for _, o := range comp {
			inComp[o] = true
		}
		// Collect the component's internal edges; a lone node without a
		// self-edge is acyclic.
		var first token.Pos
		n := 0
		for e, pos := range c.edges {
			if inComp[e.from] && inComp[e.to] {
				if n == 0 || pos < first {
					first = pos
				}
				n++
			}
		}
		if n == 0 || (len(comp) == 1 && !hasSelfEdge(c.edges, comp[0])) {
			continue
		}
		names := make([]string, len(comp))
		for i, o := range comp {
			names[i] = c.lockName(o)
		}
		sort.Strings(names)
		if len(comp) == 1 {
			c.pass.Reportf(first, "potential deadlock: %s may be acquired while another instance of %s is held; define a global order for instances of this lock",
				names[0], names[0])
		} else {
			c.pass.Reportf(first, "potential deadlock: %s are acquired in conflicting orders across this package",
				strings.Join(names, " and "))
		}
	}
}

func hasSelfEdge(edges map[edge]token.Pos, o types.Object) bool {
	_, ok := edges[edge{o, o}]
	return ok
}

// sccs is Tarjan over the tiny lock-identity graph (recursive: lock
// graphs have a handful of nodes).
func sccs(nodes []types.Object, adj map[types.Object][]types.Object) [][]types.Object {
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	var comps [][]types.Object
	next := 0
	var visit func(o types.Object)
	visit = func(o types.Object) {
		index[o], low[o] = next, next
		next++
		stack = append(stack, o)
		onStack[o] = true
		for _, w := range adj[o] {
			if _, seen := index[w]; !seen {
				visit(w)
				if low[w] < low[o] {
					low[o] = low[w]
				}
			} else if onStack[w] && index[w] < low[o] {
				low[o] = index[w]
			}
		}
		if low[o] == index[o] {
			var comp []types.Object
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == o {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, o := range nodes {
		if _, seen := index[o]; !seen {
			visit(o)
		}
	}
	return comps
}

// lockName renders a lock identity for diagnostics: "Type.field" for
// struct fields, the plain name for package-level variables.
func (c *checker) lockName(o types.Object) string {
	if name, ok := c.owners[o]; ok {
		return name
	}
	return o.Name()
}

// fieldOwners maps every struct field object declared in files to
// "TypeName.fieldName", so lock identities read as the type declares
// them rather than as whichever variable happened to hold an instance.
func fieldOwners(files []*ast.File, info *types.Info) map[types.Object]string {
	owners := map[types.Object]string{}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if obj := info.Defs[name]; obj != nil {
							owners[obj] = ts.Name.Name + "." + name.Name
						}
					}
				}
			}
		}
	}
	return owners
}
