// Package sync is a hermetic stub of the standard library's sync for
// the pooluse fixtures: just enough of Pool for the analyzer's
// type-based matching ("Pool" named type in package path "sync").
package sync

type Pool struct {
	New func() any
}

func (p *Pool) Get() any {
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(x any) {}
