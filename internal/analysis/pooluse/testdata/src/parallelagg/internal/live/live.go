package live

import "sync"

type batch struct {
	n  int
	ts []int
}

type msg struct {
	raw  *batch
	part *batch
}

// The normal pooled lifecycle: get, use, put. No diagnostics.
func fine(p *sync.Pool) {
	b := p.Get().(*batch)
	b.n++
	p.Put(b)
}

// Direct use-after-Put.
func useAfterPut(p *sync.Pool, b *batch) {
	p.Put(b)
	_ = b.n // want `b.n is used after being returned to its sync.Pool`
}

// Writing into a pooled object is as bad as reading it.
func writeAfterPut(p *sync.Pool, b *batch) {
	p.Put(b)
	b.n = 7 // want `b.n is used after being returned to its sync.Pool`
}

// Double-Put: the classic "two frees".
func doublePut(p *sync.Pool, b *batch) {
	p.Put(b)
	p.Put(b) // want `b is returned to its sync.Pool twice`
}

// May-analysis: a Put on one branch poisons the join.
func branchJoin(p *sync.Pool, b *batch, done bool) {
	if done {
		p.Put(b)
	}
	_ = b.n // want `b.n is used after being returned to its sync.Pool`
}

// Re-sending a pooled buffer hands the next Get's owner a live alias.
func resend(p *sync.Pool, ch chan *batch, b *batch) {
	p.Put(b)
	ch <- b // want `b is used after being returned to its sync.Pool`
}

// Putting a struct's field tracks the field chain, not the struct:
// the sibling field stays usable.
func fieldPut(p *sync.Pool, m *msg) {
	p.Put(m.raw)
	_ = m.part.n
	_ = m.raw.n // want `m.raw.n is used after being returned to its sync.Pool`
}

// Putting the whole struct poisons everything hanging off it.
func wholePut(p *sync.Pool, ch chan *batch, m *msg) {
	p.Put(m)
	ch <- m.raw // want `m.raw is used after being returned to its sync.Pool`
}

// A strong update rebinds the chain to a fresh object.
func strongUpdate(p *sync.Pool, m *msg) {
	p.Put(m.raw)
	m.raw = &batch{}
	m.raw.n = 1
}

// Range loops rebind their iteration variables every trip: putting
// this iteration's batch says nothing about the next one.
func drain(p *sync.Pool, ch chan *batch) {
	for b := range ch {
		b.n++
		p.Put(b)
	}
}

// release Puts its parameter; callers inherit the obligation through
// the function summary.
func release(p *sync.Pool, b *batch) {
	p.Put(b)
}

func viaHelper(p *sync.Pool, b *batch) {
	release(p, b)
	_ = b.n // want `b.n is used after being returned to its sync.Pool`
}

// releaseRaw Puts a field chain of its parameter; the summary carries
// the path, so only that chain is poisoned at the call site.
func releaseRaw(p *sync.Pool, m *msg) {
	p.Put(m.raw)
}

func viaFieldSummary(p *sync.Pool, m *msg) {
	releaseRaw(p, m)
	_ = m.part.n
	_ = m.raw.n // want `m.raw.n is used after being returned to its sync.Pool`
}

// Summaries flow through methods too, with the receiver as parameter 0.
type pools struct {
	raw sync.Pool
}

func (ps *pools) putRaw(b *batch) {
	ps.raw.Put(b)
}

func viaMethod(ps *pools, b *batch) {
	ps.putRaw(b)
	b.n = 1 // want `b.n is used after being returned to its sync.Pool`
}

// Two hops: the summary composes bottom-up.
func releaseTwice(p *sync.Pool, b *batch) {
	release(p, b)
}

func viaTwoHops(p *sync.Pool, b *batch) {
	releaseTwice(p, b)
	_ = b.ts // want `b.ts is used after being returned to its sync.Pool`
}

// A Put inside a deferred closure runs at function exit: the body's
// own uses are fine, and the closure is analyzed on its own.
func deferredPut(p *sync.Pool, b *batch) {
	defer func() { p.Put(b) }()
	b.n++
}

// Suppressed with a rationale.
func allowed(p *sync.Pool, b *batch) {
	p.Put(b)
	_ = b.n //aggvet:allow pooluse -- deliberate post-Put peek in a test harness
}
