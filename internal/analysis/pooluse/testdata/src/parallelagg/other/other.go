// Package other is outside pooluse's scope (internal/live,
// internal/dist): even a blatant use-after-Put draws no diagnostic.
package other

import "sync"

type blob struct{ n int }

func unscoped(p *sync.Pool, b *blob) {
	p.Put(b)
	_ = b.n
}
