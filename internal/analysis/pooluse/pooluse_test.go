package pooluse_test

import (
	"testing"

	"parallelagg/internal/analysis/analysistest"
	"parallelagg/internal/analysis/pooluse"
)

func TestPooluse(t *testing.T) {
	analysistest.Run(t, "testdata", pooluse.Analyzer,
		"parallelagg/internal/live",
		"parallelagg/other",
	)
}
