// Package pooluse flags pooled objects touched after they are
// returned to their sync.Pool: reads, writes, channel re-sends, and
// double-Puts, on any path after the Put. Once Put, a buffer belongs
// to the pool and may be handed to another goroutine by the next Get —
// a late read is a data race the race detector only catches if the
// interleaving happens, and a late write corrupts someone else's
// batch.
//
// The analysis is flow-sensitive and interprocedural within the
// package: it builds the call graph, computes a bottom-up summary for
// every function ("calling f may Put parameter i, or a field chain
// hanging off it"), then runs a forward may-analysis per function
// body. A Put — direct, or implied by a callee summary at a call site
// — generates a "returned to pool" fact for the target's root variable
// and selector path (m.raw, wk.scratch). Any later expression whose
// selector chain overlaps a live fact is a use-after-Put; a later Put
// of an overlapping chain is a double-Put. Facts die on strong
// updates: reassigning the variable (or a prefix of the tracked path)
// rebinds it to a fresh object, and a range loop rebinding its
// iteration variables kills facts rooted at them each iteration.
//
// Known limitations, all in the conservative-for-this-rule direction
// of missing rare hazards rather than flagging correct code: aliases
// taken before the Put are not tracked, Puts inside nested function
// literals belong to the literal's own analysis (a deferred
// closure-Put does not poison the enclosing body), and unknown callees
// are havoc only in the sense that passing an already-Put object to
// any call is reported as a use.
//
// Scoped to internal/live and internal/dist — the layers that recycle
// rawBatch/partBatch buffers through pools.
package pooluse

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"parallelagg/internal/analysis"
	"parallelagg/internal/analysis/cfg"
)

// Packages scopes the analyzer to the pooling layers. "live" matches
// both live/ and internal/live.
var Packages = []string{"internal/live", "internal/dist", "live"}

var Analyzer = &analysis.Analyzer{
	Name: "pooluse",
	Doc: "flag pooled buffers used after sync.Pool.Put\n\n" +
		"After p.Put(x) — directly or inside a callee — x belongs to the pool:\n" +
		"it must not be read, written, sent, or Put again on any subsequent\n" +
		"path. The next Get may hand the same buffer to another goroutine, so\n" +
		"a late touch is a data race or cross-batch corruption.",
	Run: run,
}

// maxPathLen caps tracked selector-path depth (segments), bounding the
// summary domain so recursive functions converge.
const maxPathLen = 3

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), Packages) {
		return nil
	}
	graph := analysis.BuildCallGraph(pass.Files, pass.TypesInfo)
	c := &checker{
		pass:  pass,
		info:  pass.TypesInfo,
		graph: graph,
		sums:  summaries(graph, pass.TypesInfo),
	}
	for _, n := range graph.Nodes {
		c.checkBody(n.Body())
	}
	return nil
}

// A fact says: the object reachable as root(.path) was returned to a
// pool at pos, and must not be touched again.
type fact struct {
	root types.Object
	path string // dotted selector chain below root; "" is the root itself
	pos  token.Pos
}

// A putEvent is one Put implied by a node: a direct sync.Pool.Put or a
// call whose callee summary Puts one of its arguments.
type putEvent struct {
	target ast.Expr // the argument expression handed to the pool
	root   types.Object
	path   string
	pos    token.Pos
}

type checker struct {
	pass  *analysis.Pass
	info  *types.Info
	graph *analysis.CallGraph
	sums  map[*analysis.FuncNode]string
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	g := cfg.New(body)
	in := cfg.Forward(g, cfg.Problem[fact]{
		Transfer: func(n ast.Node, facts cfg.Facts[fact]) { c.step(n, facts, false) },
	})
	// Reporting pass: replay each block from its solved entry facts,
	// checking uses before applying each node's own gen/kill.
	for _, blk := range g.Blocks {
		facts := cfg.Facts[fact]{}
		for f := range in[blk] {
			facts.Add(f)
		}
		for _, n := range blk.Stmts {
			c.step(n, facts, true)
		}
	}
}

// step applies one node's gen/kill to facts; when report is true it
// first checks the node's expressions against the live facts and
// reports violations. Gen/kill decisions never depend on which facts
// are present, keeping the transfer monotone for the fixpoint solve.
func (c *checker) step(n ast.Node, facts cfg.Facts[fact], report bool) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		// Loop-header marker: the iteration variables are rebound each
		// trip, so facts rooted at them do not survive the back edge.
		for _, e := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := c.info.ObjectOf(id); obj != nil {
					facts.DeleteFunc(func(f fact) bool { return f.root == obj })
				}
			}
		}
		return
	}

	puts := c.putEvents(n)

	if report {
		c.scanUses(n, facts, puts)
	}

	// Kills: a strong update to a variable or a path prefix rebinds it.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			root, path, ok := flatten(c.info, lhs)
			if !ok {
				continue
			}
			facts.DeleteFunc(func(f fact) bool {
				return f.root == root && isPathPrefix(path, f.path)
			})
		}
	}

	// Gens: everything this node hands to a pool is now off limits.
	for _, p := range puts {
		if p.root != nil {
			facts.Add(fact{root: p.root, path: p.path, pos: p.pos})
		}
	}
}

// putEvents collects the Puts a node performs: direct sync.Pool.Put
// calls and calls whose callee summary Puts a parameter. Nested
// function literals are skipped — their Puts run when the literal
// runs, under its own analysis.
func (c *checker) putEvents(n ast.Node) []putEvent {
	var events []putEvent
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target, ok := poolPutTarget(c.info, call); ok {
			root, path, _ := flatten(c.info, target)
			events = append(events, putEvent{target: target, root: root, path: path, pos: call.Pos()})
			return true
		}
		callee := c.graph.CalleeOf(call)
		if callee == nil {
			return true
		}
		for _, ent := range decodeSummary(c.sums[callee]) {
			arg := argExpr(call, callee, ent.param)
			if arg == nil {
				continue
			}
			root, path, ok := flatten(c.info, arg)
			if !ok {
				continue
			}
			events = append(events, putEvent{
				target: arg,
				root:   root,
				path:   joinPath(path, ent.path),
				pos:    call.Pos(),
			})
		}
		return true
	})
	return events
}

// scanUses walks the node's expressions and reports overlaps with live
// facts. The targets of this node's own Puts are excluded from the
// generic scan — touching them here is the Put itself — but a live
// fact overlapping a Put target is a double-Put.
func (c *checker) scanUses(n ast.Node, facts cfg.Facts[fact], puts []putEvent) {
	skip := make(map[ast.Expr]bool, len(puts))
	for _, p := range puts {
		skip[p.target] = true
		if p.root == nil {
			continue
		}
		if f, ok := overlapping(facts, p.root, p.path); ok {
			c.pass.Reportf(p.target.Pos(),
				"%s is returned to its sync.Pool twice (already Put at line %d)",
				chainString(p.root, p.path), c.line(f.pos))
		}
	}

	analysis.WalkStack(n, func(x ast.Node, stack []ast.Node) bool {
		e, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		if skip[e] {
			return false
		}
		if !isChainNode(e) {
			return true
		}
		if len(stack) > 0 && extendsChain(stack[len(stack)-1], e) {
			return true // an enclosing expression already covered this chain
		}
		root, path, ok := flatten(c.info, e)
		if !ok || root == nil {
			return true
		}
		// An assignment LHS overwriting the tracked path (or a prefix
		// of it) is a strong update, not a use; writing to a path
		// BELOW a tracked fact stores into pooled memory and is.
		lhsOfAssign := false
		if len(stack) > 0 {
			if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if lhs == e {
						lhsOfAssign = true
					}
				}
			}
		}
		var hit fact
		found := false
		for f := range facts {
			if f.root != root {
				continue
			}
			conflict := isPathPrefix(f.path, path) // touching at or below the pooled chain
			if !lhsOfAssign {
				conflict = conflict || isPathPrefix(path, f.path) // e.g. sending m with m.raw pooled
			} else {
				conflict = conflict && path != f.path && !isPathPrefix(path, f.path)
			}
			if conflict && (!found || f.pos < hit.pos) {
				hit, found = f, true
			}
		}
		if found {
			c.pass.Reportf(e.Pos(),
				"%s is used after being returned to its sync.Pool (Put at line %d): pooled buffers must not be read, written, or re-sent after Put",
				chainString(root, path), c.line(hit.pos))
		}
		return true
	})
}

func (c *checker) line(pos token.Pos) int { return c.pass.Fset.Position(pos).Line }

func overlapping(facts cfg.Facts[fact], root types.Object, path string) (fact, bool) {
	var hit fact
	found := false
	for f := range facts {
		if f.root == root && (isPathPrefix(f.path, path) || isPathPrefix(path, f.path)) {
			if !found || f.pos < hit.pos {
				hit, found = f, true
			}
		}
	}
	return hit, found
}

// --- summaries ---

// A summary entry: calling the function may Put parameter `param`
// (receiver counts as parameter 0 of methods), or the selector chain
// `path` below it.
type sumEntry struct {
	param int
	path  string
}

// summaries computes, bottom-up over the SCCs, which parameters each
// function may hand to a sync.Pool. The summary is encoded as a sorted
// ";"-joined string ("0" or "1.raw") so the fixpoint helper can compare
// it; paths are capped at maxPathLen segments, which keeps the domain
// finite under recursion.
func summaries(graph *analysis.CallGraph, info *types.Info) map[*analysis.FuncNode]string {
	return analysis.Summaries(graph, func(n *analysis.FuncNode, get func(*analysis.FuncNode) string) string {
		params := paramVars(info, n)
		index := make(map[types.Object]int, len(params))
		for i, v := range params {
			if v != nil {
				index[v] = i
			}
		}
		set := make(map[sumEntry]bool)
		add := func(root types.Object, path string) {
			i, ok := index[root]
			if !ok || strings.Count(path, ".") >= maxPathLen {
				return
			}
			set[sumEntry{param: i, path: path}] = true
		}
		for _, site := range n.Calls {
			if site.Go {
				continue // a goroutine's Put happens-after unpredictably; don't promise it
			}
			if target, ok := poolPutTarget(info, site.Call); ok {
				if root, path, ok := flatten(info, target); ok {
					add(root, path)
				}
				continue
			}
			if site.Callee == nil {
				continue
			}
			for _, ent := range decodeSummary(get(site.Callee)) {
				arg := argExpr(site.Call, site.Callee, ent.param)
				if arg == nil {
					continue
				}
				if root, path, ok := flatten(info, arg); ok {
					add(root, joinPath(path, ent.path))
				}
			}
		}
		return encodeSummary(set)
	})
}

func encodeSummary(set map[sumEntry]bool) string {
	if len(set) == 0 {
		return ""
	}
	parts := make([]string, 0, len(set))
	for ent := range set {
		s := strconv.Itoa(ent.param)
		if ent.path != "" {
			s += "." + ent.path
		}
		parts = append(parts, s)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func decodeSummary(s string) []sumEntry {
	if s == "" {
		return nil
	}
	var out []sumEntry
	for _, part := range strings.Split(s, ";") {
		idx, rest, _ := strings.Cut(part, ".")
		i, err := strconv.Atoi(idx)
		if err != nil {
			continue
		}
		out = append(out, sumEntry{param: i, path: rest})
	}
	return out
}

// paramVars lists a function's receiver (for methods) and parameters
// in order; unnamed slots hold nil to keep indices aligned.
func paramVars(info *types.Info, n *analysis.FuncNode) []*types.Var {
	var out []*types.Var
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range f.Names {
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
	}
	if n.Decl != nil {
		addList(n.Decl.Recv)
		addList(n.Decl.Type.Params)
	} else {
		addList(n.Lit.Type.Params)
	}
	return out
}

// argExpr maps a callee parameter index back to the argument
// expression at a call site; for methods, index 0 is the receiver.
func argExpr(call *ast.CallExpr, callee *analysis.FuncNode, idx int) ast.Expr {
	if callee.Decl != nil && callee.Decl.Recv != nil {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// --- expression chains ---

// poolPutTarget reports whether call is sync.Pool.Put and returns the
// pooled argument.
func poolPutTarget(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isSyncPool(tv.Type) {
		return nil, false
	}
	return call.Args[0], true
}

func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// flatten resolves an expression to (root variable, dotted selector
// path): m -> (m, ""), m.raw -> (m, "raw"), wk.outRaw[d] -> (wk,
// "outRaw") — index components are dropped, folding a whole indexed
// collection into its field, the conservative grain for this check.
func flatten(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if _, ok := obj.(*types.Var); !ok {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		if analysis.ImportedPackage(info, identOf(e.X)) != nil {
			obj := info.ObjectOf(e.Sel)
			if _, ok := obj.(*types.Var); !ok {
				return nil, "", false
			}
			return obj, "", true
		}
		root, path, ok := flatten(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, joinPath(path, e.Sel.Name), true
	case *ast.IndexExpr:
		return flatten(info, e.X)
	case *ast.SliceExpr:
		return flatten(info, e.X)
	case *ast.ParenExpr:
		return flatten(info, e.X)
	case *ast.StarExpr:
		return flatten(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return flatten(info, e.X)
		}
	}
	return nil, "", false
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func isChainNode(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// extendsChain reports whether parent continues the selector chain
// that child begins (so child is not a maximal chain on its own).
func extendsChain(parent ast.Node, child ast.Expr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == child
	case *ast.IndexExpr:
		return p.X == child
	case *ast.SliceExpr:
		return p.X == child
	case *ast.ParenExpr:
		return p.X == child
	case *ast.StarExpr:
		return p.X == child
	case *ast.UnaryExpr:
		return p.Op == token.AND && p.X == child
	}
	return false
}

// isPathPrefix reports whether a is b, or a dotted prefix of b
// ("" prefixes everything; "raw" prefixes "raw.ts" but not "raws").
func isPathPrefix(a, b string) bool {
	return a == b || a == "" || strings.HasPrefix(b, a+".")
}

func joinPath(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "." + b
	}
}

func chainString(root types.Object, path string) string {
	if path == "" {
		return root.Name()
	}
	return root.Name() + "." + path
}
