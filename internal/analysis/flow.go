package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the shared pieces of the flow-sensitive analyzers
// (maporder, floatdet, resleak): map-range detection, sort-call
// recognition for "sorted-keys" facts, and value-escape tracking for
// range loop variables. The CFG and the generic solver live in the cfg
// subpackage; these helpers are the type-aware vocabulary the transfer
// functions are written in.

// IsMapRange reports whether rng iterates a map. Ordering hazards are
// specific to maps: slice, channel and integer ranges are fully
// deterministic.
func IsMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// RootObject resolves the base variable of an lvalue-ish expression
// chain: out, out[i], s.buf, (*p).conn, &x all root at the declaring
// object of the leftmost identifier. It returns nil for expressions
// with no stable base (calls, literals).
func RootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A qualified identifier (pkg.Var) roots at the var; a field
			// selection roots at the receiver chain's base.
			if ImportedPackage(info, firstIdent(x.X)) != nil {
				return info.ObjectOf(x.Sel)
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func firstIdent(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// sortFuncs lists the order-fixing functions per package path. Any call
// to one of these establishes a "sorted" fact for the root of its first
// argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// SortCallTarget reports whether call is a recognized sorting call
// (sort.Slice and friends, slices.Sort and friends) and returns the
// expression being sorted.
func SortCallTarget(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pkg := ImportedPackage(info, id)
	if pkg == nil {
		return nil, false
	}
	names := sortFuncs[pkg.Path()]
	if names == nil || !names[sel.Sel.Name] {
		return nil, false
	}
	return call.Args[0], true
}

// RangeTaint computes the set of objects carrying the iteration order
// of one range loop: the key and value variables themselves plus every
// local transitively assigned from an expression mentioning a tainted
// object anywhere in the body (d := k.Dest(n), kv := pair{k, v}, ...).
// The closure is flow-insensitive within the body, which over-taints a
// variable that is later reassigned from clean data — the conservative
// direction for an ordering check.
func RangeTaint(info *types.Info, rng *ast.RangeStmt) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				taint[obj] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || taint[obj] {
					continue
				}
				// Tuple assignments taint every lhs from any tainted rhs;
				// per-position matching is not worth the precision.
				rhs := as.Rhs
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i : i+1]
				}
				for _, r := range rhs {
					if MentionsAny(info, r, taint) {
						taint[obj] = true
						changed = true
						break
					}
				}
			}
			return true
		})
	}
	return taint
}

// MentionsAny reports whether any identifier under n resolves to an
// object in set.
func MentionsAny(info *types.Info, n ast.Node, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && set[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
