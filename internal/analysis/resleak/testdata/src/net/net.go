// Package net is a stub of the standard library's net package, just
// rich enough to type-check the resleak fixtures hermetically.
package net

type Addr interface{ String() string }

type Conn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	Close() error
	RemoteAddr() Addr
}

type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() Addr
}

func Dial(network, address string) (Conn, error)   { return nil, nil }
func Listen(network, address string) (Listener, error) { return nil, nil }
