// Package time is a stub of the standard library's time package, just
// rich enough to type-check the resleak fixtures hermetically.
package time

type Duration int64

type Time struct{ ns int64 }

type Timer struct{ C <-chan Time }

func (t *Timer) Stop() bool  { return true }
func (t *Timer) Reset(d Duration) bool { return true }

type Ticker struct{ C <-chan Time }

func (t *Ticker) Stop() {}

func NewTimer(d Duration) *Timer   { return &Timer{} }
func NewTicker(d Duration) *Ticker { return &Ticker{} }
