// Fixtures for resleak: flagged and clean control-flow paths from
// resource acquisition to release, handoff, or leak. Import path
// parallelagg/internal/dist puts the package in the analyzer's scope.
package dist

import (
	"net"
	"os"
	"time"
)

type state struct {
	conn net.Conn
	errs []error
}

func consume(c net.Conn)   {}
func isBad(c net.Conn) bool { return false }

// --- timers ---

func leakEarlyReturn(d time.Duration, c bool) error {
	t := time.NewTimer(d) // want `resleak: t acquired here does not reach Stop`
	if c {
		return nil
	}
	t.Stop()
	return nil
}

func cleanDeferStop(d time.Duration, c bool) error {
	t := time.NewTimer(d)
	defer t.Stop()
	if c {
		return nil
	}
	return nil
}

func cleanStopOnAllPaths(d time.Duration, c bool) {
	t := time.NewTicker(d)
	if c {
		t.Stop()
		return
	}
	t.Stop()
}

func cleanDeferredClosure(d time.Duration, c bool) {
	t := time.NewTimer(d)
	defer func() { t.Stop() }()
	if c {
		return
	}
}

// A path that panics never reaches the function exit: the process is
// dying, so the timer is not a leak on that path.
func cleanPanicPath(d time.Duration, c bool) {
	t := time.NewTimer(d)
	if c {
		panic("boom")
	}
	t.Stop()
}

// --- conns and listeners, with the nil-on-error contract ---

func cleanErrPair() error {
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return err // clean: ln is nil on this path
	}
	ln.Close()
	return nil
}

func leakOnSomePath(c bool) error {
	ln, err := net.Listen("tcp", ":0") // want `resleak: ln acquired here does not reach Close`
	if err != nil {
		return err
	}
	if c {
		return nil // leaks ln
	}
	ln.Close()
	return nil
}

func cleanReturned() (net.Conn, error) {
	conn, err := net.Dial("tcp", "peer:1")
	if err != nil {
		return nil, err
	}
	return conn, nil // clean: ownership transferred to the caller
}

func cleanHandoff(register func(net.Conn)) error {
	conn, err := net.Dial("tcp", "peer:1")
	if err != nil {
		return err
	}
	register(conn) // clean: the registry owns it now
	return nil
}

func cleanStored(s *state) error {
	conn, err := net.Dial("tcp", "peer:1")
	if err != nil {
		return err
	}
	s.conn = conn // clean: reachable through s after return
	return nil
}

func cleanSent(ch chan net.Conn) error {
	conn, err := net.Dial("tcp", "peer:1")
	if err != nil {
		return err
	}
	ch <- conn
	return nil
}

func cleanGoroutine() error {
	conn, err := net.Dial("tcp", "peer:1")
	if err != nil {
		return err
	}
	go consume(conn)
	return nil
}

// The continue path abandons the conn without closing it, and the loop
// can then exit the function.
func leakInLoop(addrs []string) {
	for _, a := range addrs {
		conn, err := net.Dial("tcp", a) // want `resleak: conn acquired here does not reach Close`
		if err != nil {
			continue
		}
		if isBad(conn) {
			continue
		}
		conn.Close()
	}
}

func cleanLoopHandoff(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go consume(c)
	}
}

// Using the conn is not releasing it: only Close counts.
func leakAfterUse(buf []byte) error {
	conn, err := net.Dial("tcp", "peer:1") // want `resleak: conn acquired here does not reach Close`
	if err != nil {
		return err
	}
	_, err = conn.Read(buf)
	return err
}

// --- files ---

func leakFile(name string, c bool) error {
	f, err := os.Open(name) // want `resleak: f acquired here does not reach Close`
	if err != nil {
		return err
	}
	if c {
		return nil
	}
	return f.Close()
}

func cleanFileDefer(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// --- suppression ---

func allowedLeak(d time.Duration, c bool) {
	//aggvet:allow resleak -- fires at most once per process
	t := time.NewTimer(d)
	if c {
		return
	}
	t.Stop()
}
