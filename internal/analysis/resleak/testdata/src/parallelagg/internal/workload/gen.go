// Package workload is outside resleak's scope: the same leak patterns
// that are flagged in internal/dist must produce no diagnostics here.
package workload

import "time"

func leakEarlyReturn(d time.Duration, c bool) {
	t := time.NewTimer(d)
	if c {
		return
	}
	t.Stop()
}
