// Package os is a stub of the standard library's os package, just rich
// enough to type-check the resleak fixtures hermetically.
package os

type File struct{}

func (f *File) Close() error               { return nil }
func (f *File) Write(b []byte) (int, error) { return len(b), nil }

func Open(name string) (*File, error)   { return nil, nil }
func Create(name string) (*File, error) { return nil, nil }
