// Package resleak flags releasable resources that can leave a function
// neither released nor handed off: a time.Timer/time.Ticker that never
// reaches Stop, or a net.Conn/net.Listener/os.File that never reaches
// Close, on some path out of the function.
//
// This is the timer-leak class go vet misses: an early return between
// acquisition and the deferred Stop, an error path that closes some
// listeners but not the one just opened, a retry loop that reassigns a
// conn without closing the old one ... The analyzer is flow-sensitive:
// it builds the function's CFG, generates an "open" fact at each
// acquisition, kills it when the resource is released (x.Stop/x.Close,
// directly or deferred), returned, sent, stored, captured by a closure,
// or passed to any call (ownership handed off — the callee or tracker
// is responsible now), and reports facts that survive to the function
// exit. Error paths are modelled: after `x, err := f()`, the fact is
// dropped on the err != nil edge, where the contract says x is nil.
//
// Scoped to internal/dist, internal/faultnet and live — the layers that
// touch real OS resources; the simulation layers hold none.
package resleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"parallelagg/internal/analysis"
	"parallelagg/internal/analysis/cfg"
)

// Packages scopes the analyzer to the real-resource layers. "live"
// matches both live/ and internal/live.
var Packages = []string{"internal/dist", "internal/faultnet", "live"}

var Analyzer = &analysis.Analyzer{
	Name: "resleak",
	Doc: "flag timers/tickers/conns/files that miss Stop/Close on some path\n\n" +
		"A time.Timer, time.Ticker, net.Conn, net.Listener, or os.File acquired in\n" +
		"a function must reach its Stop/Close on every path out of the function,\n" +
		"or be returned, stored, or handed to another owner. Leaked timers pin\n" +
		"goroutines and leaked conns/files pin file descriptors for the process\n" +
		"lifetime.",
	Run: run,
}

// A fact says: the resource in obj, acquired at pos, is open and this
// function is responsible for calling release on it. errObj is the
// error paired with the acquisition, if any.
type fact struct {
	obj     types.Object
	errObj  types.Object
	pos     token.Pos
	release string
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		cfg.FuncBodies(f, func(body *ast.BlockStmt) {
			checkBody(pass, body)
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := cfg.New(body)
	c := &checker{info: info}
	in := cfg.Forward(g, cfg.Problem[fact]{Transfer: c.transfer, Refine: c.refine})
	for f := range in[g.Exit] {
		pass.Reportf(f.pos,
			"%s acquired here does not reach %s on every path out of the function: add `defer %s.%s()` right after the acquisition, or hand the handle to an owner on every path",
			f.obj.Name(), f.release, f.obj.Name(), f.release)
	}
}

type checker struct {
	info *types.Info
}

func (c *checker) transfer(n ast.Node, facts cfg.Facts[fact]) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		return // loop-header marker: body statements transfer themselves

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.killMentioned(r, facts)
		}

	case *ast.SendStmt:
		c.killMentioned(n.Value, facts)

	case *ast.DeferStmt, *ast.GoStmt:
		// A deferred x.Close() (possibly in a closure) releases on every
		// exit; a goroutine using x owns it now. Either way this
		// function's obligation ends.
		c.killMentioned(n, facts)

	case *ast.AssignStmt:
		// The old value of a reassigned variable is no longer tracked
		// (strong update), rhs uses hand the resource off, and a call
		// rhs may acquire a new resource.
		for _, rhs := range n.Rhs {
			if _, isCall := rhs.(*ast.CallExpr); isCall {
				c.killCalls(rhs, facts, true)
			} else {
				// Alias, composite literal, or closure value: the handle
				// now has another owner this analysis cannot track.
				c.killMentioned(rhs, facts)
			}
		}
		for _, lhs := range n.Lhs {
			if _, plain := lhs.(*ast.Ident); !plain {
				// m[conn] = ..., s.conn = ...: the resource is now
				// reachable through the store target.
				c.killMentioned(lhs, facts)
			}
		}
		for _, lhs := range n.Lhs {
			if id, plain := lhs.(*ast.Ident); plain {
				if obj := c.info.ObjectOf(id); obj != nil {
					facts.DeleteFunc(func(f fact) bool { return f.obj == obj })
				}
			}
		}
		c.acquisitions(n, facts)

	default:
		// Bare expressions in the CFG are branch conditions, switch tags
		// and case expressions: a call there (isBad(conn), err != nil) is
		// a use, not a handoff — only an explicit release kills. Full
		// statements get handoff semantics too.
		_, isExpr := n.(ast.Expr)
		c.killCalls(n, facts, !isExpr)
	}
}

// killCalls scans n for calls: a release method on a tracked resource
// kills its fact; when handoffs is true, any other call mentioning the
// resource in an argument (or capturing it in a function-literal
// argument) transfers ownership and kills it too.
func (c *checker) killCalls(n ast.Node, facts cfg.Facts[fact], handoffs bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if recv := analysis.RootObject(c.info, sel.X); recv != nil {
				released := false
				facts.DeleteFunc(func(f fact) bool {
					if f.obj == recv && sel.Sel.Name == f.release {
						released = true
						return true
					}
					return false
				})
				if released {
					return true
				}
			}
		}
		if handoffs {
			for _, arg := range call.Args {
				c.killMentioned(arg, facts)
			}
		}
		return true
	})
}

func (c *checker) killMentioned(n ast.Node, facts cfg.Facts[fact]) {
	facts.DeleteFunc(func(f fact) bool {
		return analysis.MentionsAny(c.info, n, map[types.Object]bool{f.obj: true})
	})
}

// acquisitions generates facts for resource-typed variables assigned
// from a call: x := f(), x, err := f(), x, y = f(), g().
func (c *checker) acquisitions(as *ast.AssignStmt, facts cfg.Facts[fact]) {
	// Map each lhs position to its rhs call, handling both n:n and the
	// n:1 multi-value form.
	rhsFor := func(i int) *ast.CallExpr {
		if len(as.Rhs) == 1 {
			call, _ := as.Rhs[0].(*ast.CallExpr)
			return call
		}
		if i < len(as.Rhs) {
			call, _ := as.Rhs[i].(*ast.CallExpr)
			return call
		}
		return nil
	}
	// The error paired with the acquisition, for the nil-on-error
	// contract: x, err := f().
	var errObj types.Object
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.info.ObjectOf(id); obj != nil && isErrorType(obj.Type()) {
				errObj = obj
			}
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || rhsFor(i) == nil {
			continue
		}
		obj := c.info.ObjectOf(id)
		if obj == nil {
			continue
		}
		release, ok := resourceRelease(obj.Type())
		if !ok {
			continue
		}
		facts.Add(fact{obj: obj, errObj: errObj, pos: id.Pos(), release: release})
	}
}

// refine models the nil-on-error contract on branch edges: on the edge
// where the paired error is known non-nil, the resource was never
// acquired, so the fact is dropped.
func (c *checker) refine(cond ast.Expr, branch bool, facts cfg.Facts[fact]) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var side ast.Expr
	switch {
	case isNilIdent(bin.Y):
		side = bin.X
	case isNilIdent(bin.X):
		side = bin.Y
	default:
		return
	}
	id, ok := side.(*ast.Ident)
	if !ok {
		return
	}
	obj := c.info.ObjectOf(id)
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	// err != nil: non-nil on the true edge; err == nil: on the false edge.
	nonNilEdge := (bin.Op == token.NEQ) == branch
	if nonNilEdge {
		facts.DeleteFunc(func(f fact) bool { return f.errObj == obj })
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// releasable maps package path → type name → release method.
var releasable = map[string]map[string]string{
	"time": {"Timer": "Stop", "Ticker": "Stop"},
	"net": {
		"Conn": "Close", "TCPConn": "Close", "UDPConn": "Close",
		"UnixConn": "Close", "Listener": "Close", "TCPListener": "Close",
		"UnixListener": "Close",
	},
	"os": {"File": "Close"},
}

// resourceRelease reports whether t is (a pointer to) a tracked
// resource type and which method releases it.
func resourceRelease(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	byName := releasable[named.Obj().Pkg().Path()]
	if byName == nil {
		return "", false
	}
	release, ok := byName[named.Obj().Name()]
	return release, ok
}
