package resleak_test

import (
	"testing"

	"parallelagg/internal/analysis/analysistest"
	"parallelagg/internal/analysis/resleak"
)

func TestResLeak(t *testing.T) {
	analysistest.Run(t, "testdata", resleak.Analyzer,
		"parallelagg/internal/dist",     // in scope: wants diagnostics
		"parallelagg/internal/workload", // out of scope: must be clean
	)
}
