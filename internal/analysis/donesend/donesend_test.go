package donesend_test

import (
	"testing"

	"parallelagg/internal/analysis/analysistest"
	"parallelagg/internal/analysis/donesend"
)

func TestDoneSend(t *testing.T) {
	analysistest.Run(t, "testdata", donesend.Analyzer,
		"parallelagg/internal/dist",     // in scope: wants diagnostics
		"parallelagg/internal/workload", // out of scope: must be clean
	)
}
