// Package donesend enforces the cancellation discipline PR 1
// established in the distributed exchange: a goroutine in internal/dist
// must never do a bare channel send, because the consumer may already
// have exited — the exact bug class of the merge-loop accepter hang,
// where accepters stranded forever on a full frames channel after the
// merge loop returned. Every send in a goroutine must be a case of a
// select that also receives from the cancellation channel:
//
//	select {
//	case frames <- in:
//	case <-done:
//	}
//
// The analyzer is lexical: it inspects sends written inside `go func()`
// literals (at any closure depth). Sends in ordinary functions that
// happen to be called from goroutines are the callee's responsibility.
package donesend

import (
	"go/ast"
	"go/token"
	"strings"

	"parallelagg/internal/analysis"
)

// DistPackages scopes the analyzer to the real-networking layer.
var DistPackages = []string{"internal/dist"}

var Analyzer = &analysis.Analyzer{
	Name: "donesend",
	Doc: "flag bare channel sends inside goroutines in internal/dist\n\n" +
		"A goroutine's send must sit in a select with a receive from the done/\n" +
		"cancellation channel, or the goroutine leaks when its consumer exits first\n" +
		"(the PR 1 merge-loop accepter bug).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatches(pass.Pkg.Path(), DistPackages) {
		return nil
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !inGoroutine(stack) {
				return true
			}
			if sel := enclosingSelect(send, stack); sel != nil && selectsOnDone(sel) {
				return true
			}
			pass.Reportf(send.Pos(),
				"bare channel send in a goroutine: select on the cancellation channel too (case <-done:) or this goroutine leaks when its consumer exits first")
			return true
		})
	}
	return nil
}

// inGoroutine reports whether the node whose ancestor stack is given
// sits (at any depth) inside a function literal launched by a go
// statement: stack shape GoStmt → CallExpr → FuncLit.
func inGoroutine(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 2; i-- {
		fl, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok || call.Fun != fl {
			continue
		}
		if _, ok := stack[i-2].(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

// enclosingSelect returns the select statement of which send is a
// direct comm clause, or nil. Stack shape: SelectStmt → BlockStmt →
// CommClause → SendStmt.
func enclosingSelect(send *ast.SendStmt, stack []ast.Node) *ast.SelectStmt {
	if len(stack) < 3 {
		return nil
	}
	cc, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || cc.Comm != ast.Stmt(send) {
		return nil
	}
	sel, _ := stack[len(stack)-3].(*ast.SelectStmt)
	return sel
}

// selectsOnDone reports whether any case of sel receives from a
// cancellation-style channel: <-done, <-ctx.Done(), <-p.quit, ...
func selectsOnDone(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue // default case
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv != nil && doneLike(recv) {
			return true
		}
	}
	return false
}

// doneNames are substrings identifying a cancellation channel by its
// terminal identifier: done, quitc, stopCh, cancelled, shutdown, ...
var doneNames = []string{"done", "quit", "stop", "cancel", "shutdown", "closing", "closed"}

func doneLike(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return doneLike(e.X)
	case *ast.CallExpr:
		// <-ctx.Done() and friends.
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "Done"
		case *ast.Ident:
			return fun.Name == "Done"
		}
		return false
	case *ast.Ident:
		return matchesDoneName(e.Name)
	case *ast.SelectorExpr:
		return matchesDoneName(e.Sel.Name)
	}
	return false
}

func matchesDoneName(name string) bool {
	lower := strings.ToLower(name)
	for _, d := range doneNames {
		if strings.Contains(lower, d) {
			return true
		}
	}
	return false
}
