// Fixture: packages outside internal/dist may use bare goroutine sends
// (e.g. bounded fan-out with buffered channels) without diagnostics.
package workload

func fanOut(ch chan int) {
	go func() {
		ch <- 1 // not internal/dist: clean
	}()
}
