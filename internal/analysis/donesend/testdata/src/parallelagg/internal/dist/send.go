// Fixture: cancellation discipline for goroutine sends in the
// distributed layer.
package dist

type result struct{ n int }

func bare(ch chan result) {
	go func() {
		ch <- result{1} // want `donesend: bare channel send in a goroutine`
	}()
}

// A select that races two data channels but never watches cancellation
// is still a leak when both consumers are gone.
func selectWithoutDone(ch, other chan int) {
	go func() {
		select {
		case ch <- 1: // want `donesend: bare channel send`
		case v := <-other:
			_ = v
		}
	}()
}

// The PR 1 fix shape: every send selects on done.
func guarded(ch chan result, done chan struct{}) {
	go func() {
		select {
		case ch <- result{1}:
		case <-done:
		}
	}()
}

// Named cancellation variants all count.
func guardedVariants(ch chan int, quitc chan struct{}, p *peerState) {
	go func() {
		select {
		case ch <- 1:
		case <-quitc:
		}
	}()
	go func() {
		select {
		case ch <- 2:
		case <-p.stopCh:
		}
	}()
}

type peerState struct{ stopCh chan struct{} }

type ctx interface{ Done() <-chan struct{} }

// Context-style cancellation counts too.
func ctxGuarded(ch chan int, c ctx) {
	go func() {
		select {
		case ch <- 1:
		case <-c.Done():
		}
	}()
}

// Sends inside a helper closure still execute on the goroutine that
// defined it: the lexical rule sees through nesting.
func nestedClosure(ch chan int) {
	go func() {
		emit := func(v int) {
			ch <- v // want `donesend: bare channel send`
		}
		emit(1)
	}()
}

// Sends outside goroutines are the caller's concern — the scan loop
// writing to peers is synchronous and bounded by deadlines.
func synchronous(ch chan int) {
	ch <- 1
	f := func() { ch <- 2 }
	f()
}

func exempted(ch chan int) {
	go func() {
		// Buffered-by-construction hand-off audited by a human.
		ch <- 1 //aggvet:allow donesend -- ch has capacity 1 and a single producer
	}()
}
