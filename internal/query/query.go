// Package query is a SQL-flavoured front-end over the parallel aggregation
// engine: multi-column rows, GROUP BY over several columns, multiple
// aggregate functions per query, WHERE predicates pushed below the
// aggregation, and HAVING applied after it — the full query shape of
// Section 2 of the paper:
//
//	SELECT   group-by columns, aggregates
//	FROM     table
//	[WHERE   predicate]
//	GROUP BY columns
//	[HAVING  predicate]
//
// Group-by values are mapped to dense 64-bit keys through an injective
// dictionary, each aggregated column becomes one engine pass, and the
// passes are stitched back into a result table. SQL NULL semantics are
// honoured: aggregates ignore NULL inputs, COUNT(*) counts rows, and a
// group whose aggregated column is entirely NULL yields NULL.
package query

import (
	"fmt"
	"sort"
	"strings"

	"parallelagg/internal/live"
	"parallelagg/internal/tuple"
)

// Type is a column type.
type Type int

const (
	// Int64 is a 64-bit integer column.
	Int64 Type = iota
	// String is a text column (usable in GROUP BY, not aggregatable).
	String
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema struct {
	Cols []Column
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is one cell: an integer, a string, or SQL NULL.
type Value struct {
	Null bool
	Int  int64
	Str  string
}

// NullValue is the SQL NULL cell.
var NullValue = Value{Null: true}

// IntVal builds a non-null integer cell.
func IntVal(v int64) Value { return Value{Int: v} }

// StrVal builds a non-null string cell.
func StrVal(v string) Value { return Value{Str: v} }

// Row is one table row, cells in schema order.
type Row []Value

// Table is an in-memory relation.
type Table struct {
	Schema Schema
	Rows   []Row
}

// Append adds a row, validating its arity.
func (t *Table) Append(r Row) error {
	if len(r) != len(t.Schema.Cols) {
		return fmt.Errorf("query: row has %d cells, schema has %d columns", len(r), len(t.Schema.Cols))
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// AggFunc is a SQL aggregate function.
type AggFunc int

const (
	// Count is COUNT(col): the number of non-null values.
	Count AggFunc = iota
	// CountStar is COUNT(*): the number of rows in the group.
	CountStar
	Sum
	// Avg is SQL-style integer average: SUM/COUNT with integer division.
	Avg
	Min
	Max
)

// String returns the SQL name.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case CountStar:
		return "COUNT(*)"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Agg is one aggregate output: Func over Col, named As in the result.
// CountStar ignores Col. An empty As derives a name like "sum_qty".
// Distinct selects the SQL DISTINCT variant (COUNT(DISTINCT col) /
// SUM(DISTINCT col)); it is valid only for Count and Sum.
type Agg struct {
	Func     AggFunc
	Col      string
	As       string
	Distinct bool
}

func (a Agg) outName() string {
	if a.As != "" {
		return a.As
	}
	if a.Func == CountStar {
		return "count_star"
	}
	name := strings.ToLower(a.Func.String()) + "_" + a.Col
	if a.Distinct {
		name = strings.ToLower(a.Func.String()) + "_distinct_" + a.Col
	}
	return name
}

// Query is a GROUP BY aggregation over a table.
type Query struct {
	GroupBy []string
	Aggs    []Agg
	// Where, if set, filters input rows before aggregation.
	Where func(Row) bool
	// Having, if set, filters result rows after aggregation. It receives
	// the result row (group-by cells then aggregate cells, in order).
	Having func(Row) bool
	// OrderBy, if set, sorts the result rows by the named RESULT column
	// (a group-by column or an aggregate's output name) instead of the
	// default group-by order. Desc reverses it.
	OrderBy string
	Desc    bool
	// Limit truncates the result to the first Limit rows (after OrderBy
	// and Having). 0 means no limit. Together with OrderBy this is the
	// SQL top-k idiom.
	Limit int
}

// Result is the query output: one row per surviving group, columns =
// group-by columns followed by the aggregates, rows sorted by the group-by
// cells so results are deterministic.
type Result struct {
	Schema Schema
	Rows   []Row
}

// Col returns the values of the named result column.
func (r *Result) Col(name string) ([]Value, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("query: result has no column %q", name)
	}
	out := make([]Value, len(r.Rows))
	for j, row := range r.Rows {
		out[j] = row[i]
	}
	return out, nil
}

// validate resolves column references and checks aggregatability.
func (q Query) validate(s Schema) error {
	if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("query: neither group-by columns nor aggregates given")
	}
	for _, g := range q.GroupBy {
		if s.Index(g) < 0 {
			return fmt.Errorf("query: unknown group-by column %q", g)
		}
	}
	for _, a := range q.Aggs {
		if a.Func == CountStar {
			continue
		}
		i := s.Index(a.Col)
		if i < 0 {
			return fmt.Errorf("query: unknown aggregate column %q", a.Col)
		}
		if s.Cols[i].Type != Int64 {
			return fmt.Errorf("query: cannot aggregate non-numeric column %q", a.Col)
		}
		if a.Distinct && a.Func != Count && a.Func != Sum {
			return fmt.Errorf("query: DISTINCT is only supported for COUNT and SUM, not %v", a.Func)
		}
	}
	return nil
}

// keyDict maps composite group-by cell tuples to dense engine keys and
// back. Encoding is injective: cells are tagged and length-prefixed.
type keyDict struct {
	fwd  map[string]tuple.Key
	back []Row
}

func newKeyDict() *keyDict { return &keyDict{fwd: make(map[string]tuple.Key)} }

func (d *keyDict) encode(cells Row) tuple.Key {
	var b strings.Builder
	for _, c := range cells {
		switch {
		case c.Null:
			b.WriteByte('n')
		case c.Str != "":
			fmt.Fprintf(&b, "s%d:%s", len(c.Str), c.Str)
		default:
			fmt.Fprintf(&b, "i%d", c.Int)
		}
		b.WriteByte(';')
	}
	s := b.String()
	if k, ok := d.fwd[s]; ok {
		return k
	}
	k := tuple.Key(len(d.back))
	d.fwd[s] = k
	d.back = append(d.back, append(Row(nil), cells...))
	return k
}

// encodedRow pairs a source row with its dense group key.
type encodedRow struct {
	key tuple.Key
	row Row
}

// Execute runs the query on the table using the live parallel engine with
// the given configuration and algorithm.
func Execute(t *Table, q Query, cfg live.Config, alg live.Algorithm) (*Result, error) {
	if err := q.validate(t.Schema); err != nil {
		return nil, err
	}

	gidx := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		gidx[i] = t.Schema.Index(g)
	}

	// Encode group keys once, applying WHERE.
	dict := newKeyDict()
	enc := make([]encodedRow, 0, len(t.Rows))
	cells := make(Row, len(gidx))
	for _, r := range t.Rows {
		if q.Where != nil && !q.Where(r) {
			continue
		}
		for i, gi := range gidx {
			cells[i] = r[gi]
		}
		enc = append(enc, encodedRow{key: dict.encode(cells), row: r})
	}

	// One engine pass per distinct aggregated column, plus a row-count
	// pass whenever COUNT(*) is requested or no column pass exists (pure
	// duplicate elimination). Group keys are dense dictionary indices
	// (0..G-1), so each pass's result is merged into a flat slice indexed
	// by key instead of a second map — the per-group lookup during result
	// assembly is then an array access.
	G := len(dict.back)
	colState := map[int]passState{}
	needRowCount := len(q.Aggs) == 0
	for _, a := range q.Aggs {
		if a.Func == CountStar {
			needRowCount = true
			continue
		}
		if a.Distinct {
			continue // DISTINCT aggregates run their own pass below
		}
		colState[t.Schema.Index(a.Col)] = passState{}
	}
	if len(colState) == 0 {
		needRowCount = true
	}
	runPass := func(col int) (passState, error) {
		in := make([]tuple.Tuple, 0, len(enc))
		for _, er := range enc {
			v := int64(0)
			if col >= 0 {
				cell := er.row[col]
				if cell.Null {
					continue // SQL aggregates ignore NULLs
				}
				v = cell.Int
			}
			in = append(in, tuple.Tuple{Key: er.key, Val: v})
		}
		res, err := live.Aggregate(cfg, in, alg)
		if err != nil {
			return passState{}, err
		}
		ps := passState{st: make([]tuple.AggState, G), ok: make([]bool, G)}
		for k, s := range res.Groups {
			ps.st[k] = s
			ps.ok[k] = true
		}
		return ps, nil
	}
	for col := range colState {
		st, err := runPass(col)
		if err != nil {
			return nil, err
		}
		colState[col] = st
	}
	var rowCount passState
	if needRowCount {
		st, err := runPass(-1)
		if err != nil {
			return nil, err
		}
		rowCount = st
	}

	// DISTINCT passes: deduplicate (group, value) pairs through the
	// engine — parallel duplicate elimination, the paper's other use case
	// — then fold one representative per pair back into per-group counts
	// and sums, again in flat slices indexed by the dense group key
	// (count == 0 marks a group whose column was entirely NULL).
	distinctState := map[int][]distinctAgg{}
	for _, a := range q.Aggs {
		if !a.Distinct {
			continue
		}
		col := t.Schema.Index(a.Col)
		if _, done := distinctState[col]; done {
			continue
		}
		cd := newKeyDict()
		var backGroup []tuple.Key
		var backVal []int64
		in := make([]tuple.Tuple, 0, len(enc))
		pair := make(Row, 2)
		for _, er := range enc {
			cell := er.row[col]
			if cell.Null {
				continue
			}
			pair[0] = IntVal(int64(er.key))
			pair[1] = cell
			before := len(cd.back)
			ck := cd.encode(pair)
			if len(cd.back) > before { // first sighting of this pair
				backGroup = append(backGroup, er.key)
				backVal = append(backVal, cell.Int)
			}
			in = append(in, tuple.Tuple{Key: ck, Val: cell.Int})
		}
		dres, err := live.Aggregate(cfg, in, alg)
		if err != nil {
			return nil, err
		}
		st := make([]distinctAgg, G)
		for ck := range dres.Groups {
			g := backGroup[ck]
			st[g].count++
			st[g].sum += backVal[ck]
		}
		distinctState[col] = st
	}

	// Result schema: group-by columns, then aggregates.
	out := &Result{}
	for _, g := range q.GroupBy {
		out.Schema.Cols = append(out.Schema.Cols, t.Schema.Cols[t.Schema.Index(g)])
	}
	for _, a := range q.Aggs {
		out.Schema.Cols = append(out.Schema.Cols, Column{Name: a.outName(), Type: Int64})
	}

	// Every dictionary entry was minted by a surviving input row, so the
	// dense key space 0..G-1 IS the union of groups across passes (a
	// group whose aggregated column is entirely NULL still exists).
	keys := make([]tuple.Key, 0, G)
	for k := 0; k < G; k++ {
		keys = append(keys, tuple.Key(k))
	}
	sort.Slice(keys, func(i, j int) bool {
		return lessRow(dict.back[keys[i]], dict.back[keys[j]])
	})

	for _, k := range keys {
		row := append(Row(nil), dict.back[k]...)
		for _, a := range q.Aggs {
			if a.Distinct {
				da := distinctState[t.Schema.Index(a.Col)][k]
				switch {
				case a.Func == Count:
					row = append(row, IntVal(da.count))
				case da.count == 0:
					row = append(row, NullValue) // SUM of all-NULL column
				default:
					row = append(row, IntVal(da.sum))
				}
				continue
			}
			row = append(row, evalAgg(a, k, t.Schema, colState, rowCount))
		}
		if q.Having != nil && !q.Having(row) {
			continue
		}
		out.Rows = append(out.Rows, row)
	}
	if q.OrderBy != "" {
		col := out.Schema.Index(q.OrderBy)
		if col < 0 {
			return nil, fmt.Errorf("query: ORDER BY column %q not in the result", q.OrderBy)
		}
		sort.SliceStable(out.Rows, func(i, j int) bool {
			a, b := Row{out.Rows[i][col]}, Row{out.Rows[j][col]}
			if q.Desc {
				return lessRow(b, a)
			}
			return lessRow(a, b)
		})
	}
	if q.Limit > 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
	}
	if r := cfg.Obs; r != nil {
		r.Counter("sql_queries_total", "queries executed").Inc()
		r.Counter("sql_rows_in_total", "table rows read (before WHERE)").Add(int64(len(t.Rows)))
		r.Counter("sql_rows_selected_total", "rows surviving the WHERE clause").Add(int64(len(enc)))
		r.Counter("sql_groups_out_total", "result rows produced (after HAVING and LIMIT)").Add(int64(len(out.Rows)))
	}
	return out, nil
}

// passState is one engine pass's result, flattened onto the dense group
// key space: st[k] is group k's aggregate state, valid when ok[k].
type passState struct {
	st []tuple.AggState
	ok []bool
}

func (p passState) get(k tuple.Key) (tuple.AggState, bool) {
	if p.ok == nil || !p.ok[k] {
		return tuple.AggState{}, false
	}
	return p.st[k], true
}

// distinctAgg folds the deduplicated (group, value) pairs of one DISTINCT
// pass back into a per-group count and sum.
type distinctAgg struct{ count, sum int64 }

// evalAgg produces one aggregate cell for group k.
func evalAgg(a Agg, k tuple.Key, s Schema, colState map[int]passState, rowCount passState) Value {
	if a.Func == CountStar {
		if st, ok := rowCount.get(k); ok {
			return IntVal(st.Count)
		}
		return IntVal(0)
	}
	st, ok := colState[s.Index(a.Col)].get(k)
	if !ok {
		if a.Func == Count {
			return IntVal(0) // COUNT of an all-NULL column is 0, not NULL
		}
		return NullValue
	}
	switch a.Func {
	case Count:
		return IntVal(st.Count)
	case Sum:
		return IntVal(st.Sum)
	case Avg:
		return IntVal(st.Sum / st.Count)
	case Min:
		return IntVal(st.Min)
	case Max:
		return IntVal(st.Max)
	default:
		return NullValue
	}
}

// lessRow orders rows cell-wise: NULLs first, then by string, then by int.
func lessRow(a, b Row) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		x, y := a[i], b[i]
		switch {
		case x.Null && y.Null:
			continue
		case x.Null:
			return true
		case y.Null:
			return false
		case x.Str != y.Str:
			return x.Str < y.Str
		case x.Int != y.Int:
			return x.Int < y.Int
		}
	}
	return false
}
