package query

import (
	"fmt"
	"testing"
	"testing/quick"

	"parallelagg/internal/live"
)

// lineitems builds a small lineitem-like table:
// (returnflag string, linestatus string, quantity int, price int).
func lineitems() *Table {
	t := &Table{Schema: Schema{Cols: []Column{
		{Name: "returnflag", Type: String},
		{Name: "linestatus", Type: String},
		{Name: "quantity", Type: Int64},
		{Name: "price", Type: Int64},
	}}}
	add := func(rf, ls string, qty, price Value) {
		if err := t.Append(Row{StrVal(rf), StrVal(ls), qty, price}); err != nil {
			panic(err)
		}
	}
	add("A", "F", IntVal(10), IntVal(100))
	add("A", "F", IntVal(20), IntVal(200))
	add("A", "O", IntVal(5), IntVal(50))
	add("N", "F", IntVal(7), NullValue) // NULL price
	add("N", "F", NullValue, IntVal(70))
	add("R", "O", IntVal(1), IntVal(10))
	return t
}

func exec(t *testing.T, tab *Table, q Query) *Result {
	t.Helper()
	res, err := Execute(tab, q, live.Config{Workers: 3}, live.AdaptiveTwoPhase)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGroupByTwoColumnsAllAggregates(t *testing.T) {
	res := exec(t, lineitems(), Query{
		GroupBy: []string{"returnflag", "linestatus"},
		Aggs: []Agg{
			{Func: CountStar},
			{Func: Count, Col: "quantity"},
			{Func: Sum, Col: "quantity"},
			{Func: Avg, Col: "quantity"},
			{Func: Min, Col: "quantity"},
			{Func: Max, Col: "quantity"},
			{Func: Sum, Col: "price"},
		},
	})
	if len(res.Rows) != 4 {
		t.Fatalf("got %d groups, want 4:\n%v", len(res.Rows), res.Rows)
	}
	// Groups sort lexicographically: (A,F), (A,O), (N,F), (R,O).
	af := res.Rows[0]
	if af[0].Str != "A" || af[1].Str != "F" {
		t.Fatalf("first group = %v", af)
	}
	// (A,F): 2 rows, count(qty)=2, sum=30, avg=15, min=10, max=20, sum(price)=300.
	want := []int64{2, 2, 30, 15, 10, 20, 300}
	for i, w := range want {
		if got := af[2+i]; got.Null || got.Int != w {
			t.Errorf("(A,F) agg %d = %v, want %d", i, got, w)
		}
	}
	// (N,F): 2 rows, count(qty)=1 (one NULL), sum(qty)=7, sum(price)=70.
	nf := res.Rows[2]
	if nf[0].Str != "N" {
		t.Fatalf("third group = %v", nf)
	}
	if nf[2].Int != 2 || nf[3].Int != 1 || nf[4].Int != 7 || nf[8].Int != 70 {
		t.Errorf("(N,F) = %v", nf)
	}
}

func TestWherePushdown(t *testing.T) {
	tab := lineitems()
	qtyIdx := tab.Schema.Index("quantity")
	res := exec(t, tab, Query{
		GroupBy: []string{"returnflag"},
		Aggs:    []Agg{{Func: CountStar}},
		Where: func(r Row) bool {
			return !r[qtyIdx].Null && r[qtyIdx].Int >= 7
		},
	})
	// Rows surviving WHERE: (A,10), (A,20), (N,7) → groups A:2, N:1.
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "A" || res.Rows[0][1].Int != 2 {
		t.Errorf("A row = %v", res.Rows[0])
	}
	if res.Rows[1][0].Str != "N" || res.Rows[1][1].Int != 1 {
		t.Errorf("N row = %v", res.Rows[1])
	}
}

func TestHavingAppliedAfterAggregation(t *testing.T) {
	res := exec(t, lineitems(), Query{
		GroupBy: []string{"returnflag"},
		Aggs:    []Agg{{Func: Sum, Col: "quantity", As: "total"}},
		Having: func(r Row) bool {
			return !r[1].Null && r[1].Int > 10
		},
	})
	// Sums: A=35, N=7, R=1 → only A survives.
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "A" || res.Rows[0][1].Int != 35 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Schema.Cols[1].Name != "total" {
		t.Errorf("aggregate name = %q", res.Schema.Cols[1].Name)
	}
}

func TestAllNullGroupYieldsNullAggregate(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "k", Type: Int64}, {Name: "v", Type: Int64},
	}}}
	tab.Append(Row{IntVal(1), NullValue})
	tab.Append(Row{IntVal(1), NullValue})
	tab.Append(Row{IntVal(2), IntVal(9)})
	res := exec(t, tab, Query{
		GroupBy: []string{"k"},
		Aggs: []Agg{
			{Func: Sum, Col: "v"},
			{Func: Count, Col: "v"},
			{Func: CountStar},
		},
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	g1 := res.Rows[0]
	if !g1[1].Null {
		t.Errorf("SUM of all-NULL group = %v, want NULL", g1[1])
	}
	if g1[2].Null || g1[2].Int != 0 {
		t.Errorf("COUNT of all-NULL group = %v, want 0", g1[2])
	}
	if g1[3].Int != 2 {
		t.Errorf("COUNT(*) = %v, want 2", g1[3])
	}
}

func TestScalarAggregateNoGroupBy(t *testing.T) {
	tab := lineitems()
	res := exec(t, tab, Query{
		Aggs: []Agg{{Func: Sum, Col: "quantity"}, {Func: CountStar}},
	})
	if len(res.Rows) != 1 {
		t.Fatalf("scalar aggregate returned %d rows", len(res.Rows))
	}
	if res.Rows[0][0].Int != 43 || res.Rows[0][1].Int != 6 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestDuplicateElimination(t *testing.T) {
	// SELECT DISTINCT = GROUP BY with no aggregates.
	tab := &Table{Schema: Schema{Cols: []Column{{Name: "city", Type: String}}}}
	for _, c := range []string{"madison", "madison", "berkeley", "madison", "austin"} {
		tab.Append(Row{StrVal(c)})
	}
	res := exec(t, tab, Query{GroupBy: []string{"city"}})
	if len(res.Rows) != 3 {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "austin" || res.Rows[2][0].Str != "madison" {
		t.Errorf("order = %v", res.Rows)
	}
}

func TestNullGroupKey(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "k", Type: String}, {Name: "v", Type: Int64},
	}}}
	tab.Append(Row{NullValue, IntVal(1)})
	tab.Append(Row{NullValue, IntVal(2)})
	tab.Append(Row{StrVal("x"), IntVal(3)})
	res := exec(t, tab, Query{GroupBy: []string{"k"}, Aggs: []Agg{{Func: Sum, Col: "v"}}})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// NULL group sorts first and aggregates both NULL-keyed rows.
	if !res.Rows[0][0].Null || res.Rows[0][1].Int != 3 {
		t.Errorf("NULL group = %v", res.Rows[0])
	}
}

func TestInjectiveKeyEncoding(t *testing.T) {
	d := newKeyDict()
	// Pairs that naive separator-based encodings confuse.
	rows := []Row{
		{StrVal("a;b"), StrVal("c")},
		{StrVal("a"), StrVal("b;c")},
		{StrVal("a;"), StrVal("b;c")},
		{IntVal(12), IntVal(3)},
		{IntVal(1), IntVal(23)},
		{StrVal("1"), StrVal("23")},
		{NullValue, IntVal(0)},
		{IntVal(0), NullValue},
	}
	seen := map[interface{}]bool{}
	for _, r := range rows {
		k := d.encode(r)
		if seen[k] {
			t.Fatalf("key collision for %v", r)
		}
		seen[k] = true
	}
	// Same cells → same key.
	if d.encode(rows[0]) != d.encode(rows[0]) {
		t.Error("encode not stable")
	}
}

func TestValidationErrors(t *testing.T) {
	tab := lineitems()
	cases := []Query{
		{},
		{GroupBy: []string{"nope"}},
		{GroupBy: []string{"returnflag"}, Aggs: []Agg{{Func: Sum, Col: "nope"}}},
		{GroupBy: []string{"returnflag"}, Aggs: []Agg{{Func: Sum, Col: "linestatus"}}},
	}
	for i, q := range cases {
		if _, err := Execute(tab, q, live.Config{}, live.TwoPhase); err == nil {
			t.Errorf("case %d: bad query accepted", i)
		}
	}
}

func TestAppendArityChecked(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{{Name: "a", Type: Int64}}}}
	if err := tab.Append(Row{IntVal(1), IntVal(2)}); err == nil {
		t.Error("wrong-arity row accepted")
	}
}

func TestResultColAccessor(t *testing.T) {
	res := exec(t, lineitems(), Query{
		GroupBy: []string{"returnflag"},
		Aggs:    []Agg{{Func: CountStar, As: "n"}},
	})
	col, err := res.Col("n")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range col {
		total += v.Int
	}
	if total != 6 {
		t.Errorf("counts sum to %d, want 6", total)
	}
	if _, err := res.Col("missing"); err == nil {
		t.Error("missing column accepted")
	}
}

// Property: the query layer agrees with a direct map-based evaluation for
// random single-column group-bys, for every live algorithm.
func TestQueryMatchesDirectEvaluationProperty(t *testing.T) {
	f := func(keys []uint8, vals []int8, algPick uint8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if n == 0 {
			return true
		}
		tab := &Table{Schema: Schema{Cols: []Column{
			{Name: "k", Type: Int64}, {Name: "v", Type: Int64},
		}}}
		type agg struct{ count, sum int64 }
		ref := map[int64]*agg{}
		for i := 0; i < n; i++ {
			k, v := int64(keys[i]%16), int64(vals[i])
			tab.Append(Row{IntVal(k), IntVal(v)})
			if ref[k] == nil {
				ref[k] = &agg{}
			}
			ref[k].count++
			ref[k].sum += v
		}
		alg := live.Algorithms()[int(algPick)%len(live.Algorithms())]
		res, err := Execute(tab, Query{
			GroupBy: []string{"k"},
			Aggs:    []Agg{{Func: CountStar}, {Func: Sum, Col: "v"}},
		}, live.Config{Workers: 3, TableEntries: 4, InitSeg: 8}, alg)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(ref) {
			return false
		}
		for _, r := range res.Rows {
			a := ref[r[0].Int]
			if a == nil || r[1].Int != a.count || r[2].Int != a.sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAggFuncNames(t *testing.T) {
	for f, want := range map[AggFunc]string{
		Count: "COUNT", CountStar: "COUNT(*)", Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
	a := Agg{Func: Sum, Col: "qty"}
	if a.outName() != "sum_qty" {
		t.Errorf("outName = %q", a.outName())
	}
	if (Agg{Func: CountStar}).outName() != "count_star" {
		t.Error("count_star name wrong")
	}
}

func BenchmarkQueryQ1Shape(b *testing.B) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "flag", Type: Int64}, {Name: "qty", Type: Int64},
	}}}
	for i := 0; i < 50_000; i++ {
		tab.Append(Row{IntVal(int64(i % 6)), IntVal(int64(i % 50))})
	}
	q := Query{
		GroupBy: []string{"flag"},
		Aggs:    []Agg{{Func: CountStar}, {Func: Sum, Col: "qty"}, {Func: Avg, Col: "qty"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(tab, q, live.Config{}, live.AdaptiveTwoPhase); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleExecute() {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "city", Type: String},
		{Name: "sales", Type: Int64},
	}}}
	tab.Append(Row{StrVal("madison"), IntVal(10)})
	tab.Append(Row{StrVal("madison"), IntVal(30)})
	tab.Append(Row{StrVal("austin"), IntVal(5)})
	res, _ := Execute(tab, Query{
		GroupBy: []string{"city"},
		Aggs:    []Agg{{Func: Sum, Col: "sales", As: "total"}},
	}, live.Config{Workers: 2}, live.AdaptiveTwoPhase)
	for _, r := range res.Rows {
		fmt.Printf("%s %d\n", r[0].Str, r[1].Int)
	}
	// Output:
	// austin 5
	// madison 40
}

func TestOrderByAndLimitTopK(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "k", Type: Int64}, {Name: "v", Type: Int64},
	}}}
	// Sums: k=0 -> 5, k=1 -> 50, k=2 -> 20, k=3 -> 35.
	for _, r := range [][2]int64{{0, 5}, {1, 30}, {1, 20}, {2, 20}, {3, 35}} {
		tab.Append(Row{IntVal(r[0]), IntVal(r[1])})
	}
	res := exec(t, tab, Query{
		GroupBy: []string{"k"},
		Aggs:    []Agg{{Func: Sum, Col: "v", As: "total"}},
		OrderBy: "total",
		Desc:    true,
		Limit:   2,
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 50 {
		t.Errorf("top row = %v, want k=1 total=50", res.Rows[0])
	}
	if res.Rows[1][0].Int != 3 || res.Rows[1][1].Int != 35 {
		t.Errorf("second row = %v, want k=3 total=35", res.Rows[1])
	}
}

func TestOrderByAscending(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "k", Type: Int64}, {Name: "v", Type: Int64},
	}}}
	for _, r := range [][2]int64{{9, 1}, {5, 7}, {7, 3}} {
		tab.Append(Row{IntVal(r[0]), IntVal(r[1])})
	}
	res := exec(t, tab, Query{
		GroupBy: []string{"k"},
		Aggs:    []Agg{{Func: Sum, Col: "v", As: "s"}},
		OrderBy: "s",
	})
	var prev int64 = -1 << 62
	for _, r := range res.Rows {
		if r[1].Int < prev {
			t.Fatalf("rows not ascending by s: %v", res.Rows)
		}
		prev = r[1].Int
	}
}

func TestOrderByUnknownColumnRejected(t *testing.T) {
	tab := lineitems()
	_, err := Execute(tab, Query{
		GroupBy: []string{"returnflag"},
		Aggs:    []Agg{{Func: CountStar}},
		OrderBy: "nope",
	}, live.Config{}, live.TwoPhase)
	if err == nil {
		t.Error("unknown ORDER BY column accepted")
	}
}

func TestCountAndSumDistinct(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "k", Type: Int64}, {Name: "v", Type: Int64},
	}}}
	// Group 1: values 5,5,7 → distinct {5,7}; group 2: 9,NULL,9 → {9}.
	for _, r := range []struct {
		k int64
		v Value
	}{
		{1, IntVal(5)}, {1, IntVal(5)}, {1, IntVal(7)},
		{2, IntVal(9)}, {2, NullValue}, {2, IntVal(9)},
	} {
		tab.Append(Row{IntVal(r.k), r.v})
	}
	res := exec(t, tab, Query{
		GroupBy: []string{"k"},
		Aggs: []Agg{
			{Func: Count, Col: "v", Distinct: true, As: "nd"},
			{Func: Sum, Col: "v", Distinct: true, As: "sd"},
			{Func: Count, Col: "v", As: "n"},
			{Func: Sum, Col: "v", As: "s"},
		},
	})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	g1 := res.Rows[0]
	if g1[1].Int != 2 || g1[2].Int != 12 || g1[3].Int != 3 || g1[4].Int != 17 {
		t.Errorf("group 1 = %v, want nd=2 sd=12 n=3 s=17", g1)
	}
	g2 := res.Rows[1]
	if g2[1].Int != 1 || g2[2].Int != 9 || g2[3].Int != 2 || g2[4].Int != 18 {
		t.Errorf("group 2 = %v, want nd=1 sd=9 n=2 s=18", g2)
	}
}

func TestDistinctAllNullGroup(t *testing.T) {
	tab := &Table{Schema: Schema{Cols: []Column{
		{Name: "k", Type: Int64}, {Name: "v", Type: Int64},
	}}}
	tab.Append(Row{IntVal(1), NullValue})
	res := exec(t, tab, Query{
		GroupBy: []string{"k"},
		Aggs: []Agg{
			{Func: Count, Col: "v", Distinct: true},
			{Func: Sum, Col: "v", Distinct: true},
		},
	})
	if res.Rows[0][1].Int != 0 {
		t.Errorf("COUNT(DISTINCT all-NULL) = %v, want 0", res.Rows[0][1])
	}
	if !res.Rows[0][2].Null {
		t.Errorf("SUM(DISTINCT all-NULL) = %v, want NULL", res.Rows[0][2])
	}
}

func TestDistinctRejectedForMinMax(t *testing.T) {
	tab := lineitems()
	_, err := Execute(tab, Query{
		GroupBy: []string{"returnflag"},
		Aggs:    []Agg{{Func: Min, Col: "quantity", Distinct: true}},
	}, live.Config{}, live.TwoPhase)
	if err == nil {
		t.Error("MIN(DISTINCT) accepted")
	}
}

func TestDistinctOutputName(t *testing.T) {
	a := Agg{Func: Count, Col: "v", Distinct: true}
	if a.outName() != "count_distinct_v" {
		t.Errorf("outName = %q", a.outName())
	}
}
