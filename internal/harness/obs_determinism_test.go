package harness

import (
	"bytes"
	"testing"

	"parallelagg/internal/core"
	"parallelagg/internal/obs"
	"parallelagg/internal/params"
	"parallelagg/internal/workload"
)

// TestSnapshotSameSeedByteIdentical is the determinism contract of the
// observability layer (DESIGN.md §9): two full simulator runs from the
// same seed must serialize byte-identical metrics snapshots — virtual
// time, integer-valued metrics, and sorted export order leave nothing
// for the host machine to perturb. One adaptive algorithm from each
// family keeps the switch paths in the covered surface.
func TestSnapshotSameSeedByteIdentical(t *testing.T) {
	for _, alg := range []core.Algorithm{core.A2P, core.ARep} {
		t.Run(alg.String(), func(t *testing.T) {
			run := func() []byte {
				prm := params.Implementation()
				prm.Tuples = 40_000
				prm.HashEntries = 400 // small enough that switches and spills fire
				rel := workload.Uniform(prm.N, prm.Tuples, 6_000, 7)
				reg := obs.New()
				if _, err := core.Run(prm, rel, alg, core.Options{Obs: reg}); err != nil {
					t.Fatal(err)
				}
				return reg.Snapshot()
			}
			a, b := run(), run()
			if len(a) == 0 {
				t.Fatal("snapshot is empty")
			}
			if !bytes.Equal(a, b) {
				for i := range a {
					if i >= len(b) || a[i] != b[i] {
						lo := max(0, i-80)
						t.Fatalf("snapshots diverge at byte %d:\nrun1: …%s\nrun2: …%s",
							i, a[lo:min(len(a), i+80)], b[lo:min(len(b), i+80)])
					}
				}
				t.Fatalf("snapshots differ in length: %d vs %d", len(a), len(b))
			}
			for _, series := range []string{
				"sim_virtual_time_ns",
				"sim_node_utilization_permille",
				"sim_node_scanned_total",
				"sim_phase_switch_total",
				"sim_hash_occupancy_permille",
				"sim_net_bytes_total",
			} {
				if !bytes.Contains(a, []byte(series)) {
					t.Errorf("snapshot is missing family %s", series)
				}
			}
		})
	}
}
