// Package harness defines one experiment per table/figure of the paper's
// evaluation and regenerates its data: Figures 1–7 from the analytical cost
// models (internal/cost), Figures 8–9 from the discrete-event cluster
// implementation (internal/core). Each experiment carries machine-checkable
// shape assertions — who wins, where the crossovers fall — mirroring the
// qualitative claims in the paper.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Point is one measurement: X is the swept parameter (group count, node
// count or sample size), Y the modelled or simulated time in seconds.
type Point struct {
	X float64
	Y float64
}

// Series is one curve of an experiment.
type Series struct {
	Name   string
	Points []Point
}

// Y returns the Y value at x, or an error if the series has no such point.
func (s *Series) Y(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("series %s has no point at x=%v", s.Name, x)
}

// Experiment is one regenerated table/figure.
type Experiment struct {
	ID     string // "fig1" … "fig9"
	Title  string
	XLabel string
	YLabel string
	Notes  string
	Series []Series
}

// Get returns the named series.
func (e *Experiment) Get(name string) (*Series, error) {
	for i := range e.Series {
		if e.Series[i].Name == name {
			return &e.Series[i], nil
		}
	}
	return nil, fmt.Errorf("%s: no series %q", e.ID, name)
}

// xs returns the sorted union of all X values across the series.
func (e *Experiment) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range e.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render writes the experiment as an aligned text table, one row per X
// value and one column per series — the same rows/series the paper plots.
func (e *Experiment) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title); err != nil {
		return err
	}
	if e.Notes != "" {
		fmt.Fprintf(w, "   %s\n", e.Notes)
	}
	cols := []string{e.XLabel}
	for _, s := range e.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for _, x := range e.xs() {
		row := []string{formatX(x)}
		for _, s := range e.Series {
			y, err := s.Y(x)
			if err != nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", y))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", len(b.String())))
		}
	}
	_, err := fmt.Fprintln(w, "   (Y values in seconds of modelled/simulated time)")
	return err
}

// RenderCSV writes the experiment as CSV (header row, then one row per X
// value), ready for any plotting tool. Missing points are empty cells.
func (e *Experiment) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{e.XLabel}
	for _, s := range e.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range e.xs() {
		row := []string{formatX(x)}
		for _, s := range e.Series {
			y, err := s.Y(x)
			if err != nil {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(y, 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderMarkdown writes the experiment as a GitHub-flavoured markdown
// section (title, notes, table) — the format EXPERIMENTS.md records.
func (e *Experiment) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title); err != nil {
		return err
	}
	if e.Notes != "" {
		fmt.Fprintf(w, "%s\n\n", e.Notes)
	}
	fmt.Fprintf(w, "| %s |", e.XLabel)
	for _, s := range e.Series {
		fmt.Fprintf(w, " %s |", s.Name)
	}
	fmt.Fprint(w, "\n|")
	for i := 0; i <= len(e.Series); i++ {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, x := range e.xs() {
		fmt.Fprintf(w, "| %s |", formatX(x))
		for _, s := range e.Series {
			y, err := s.Y(x)
			if err != nil {
				fmt.Fprint(w, " |")
				continue
			}
			fmt.Fprintf(w, " %.2f |", y)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func formatX(x float64) string {
	if x == float64(int64(x)) && x < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Runner generates experiments. Scale shrinks the simulated (Figure 8/9)
// workloads: Scale 1 is the paper's 2M-tuple implementation study, Scale
// 0.125 a 250K-tuple quick run with the same shape. Model figures (1–7)
// always use the paper's full parameters — they are closed-form and free.
type Runner struct {
	Scale float64
	Seed  int64
}

// NewRunner returns a Runner with the given scale (0 means 0.125, the
// quick default) and seed (0 means 1).
func NewRunner(scale float64, seed int64) Runner {
	if scale == 0 {
		scale = 0.125
	}
	if seed == 0 {
		seed = 1
	}
	return Runner{Scale: scale, Seed: seed}
}

// IDs lists the paper-figure experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
}

// ExtIDs lists the extension experiments: follow-ups to the paper's
// discussion sections that it analyses but does not plot.
func ExtIDs() []string {
	return []string{"ext-opt", "ext-sort", "ext-inputskew", "ext-bcast", "ext-simscaleup"}
}

// AllIDs lists every regenerable experiment: the paper's figures followed
// by the extensions.
func AllIDs() []string { return append(IDs(), ExtIDs()...) }

// Figure regenerates one experiment by ID.
func (r Runner) Figure(id string) (*Experiment, error) {
	switch id {
	case "fig1":
		return r.Fig1(), nil
	case "fig2":
		return r.Fig2(), nil
	case "fig3":
		return r.Fig3(), nil
	case "fig4":
		return r.Fig4(), nil
	case "fig5":
		return r.Fig5(), nil
	case "fig6":
		return r.Fig6(), nil
	case "fig7":
		return r.Fig7(), nil
	case "fig8":
		return r.Fig8()
	case "fig9":
		return r.Fig9()
	case "ext-opt":
		return r.ExtOpt(), nil
	case "ext-sort":
		return r.ExtSort()
	case "ext-inputskew":
		return r.ExtInputSkew()
	case "ext-bcast":
		return r.ExtBcast()
	case "ext-simscaleup":
		return r.ExtSimScaleup()
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (want %s)", id, strings.Join(AllIDs(), ", "))
	}
}

// All regenerates every experiment, paper figures and extensions.
func (r Runner) All() ([]*Experiment, error) {
	var out []*Experiment
	for _, id := range AllIDs() {
		e, err := r.Figure(id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
