package harness

import (
	"fmt"

	"parallelagg/internal/cluster"
	"parallelagg/internal/core"
	"parallelagg/internal/exec"
	"parallelagg/internal/optimizer"
	"parallelagg/internal/params"
	"parallelagg/internal/workload"
)

// Extension experiments: not figures of the paper, but direct follow-ups
// to its discussion sections. "ext-opt" quantifies the estimation-error
// motivation of Section 1; "ext-sort" evaluates the sort-based alternative
// the paper cites ([BBDW83]) against hash aggregation; "ext-inputskew"
// measures Section 6.1's input-skew discussion, which the paper analyses
// but never plots.

// ExtOpt regenerates the estimation-error sensitivity experiment: a static
// cost-based optimizer picks among {C-2P, 2P, Rep} from an estimate that is
// off by the x-axis factor, and pays the chosen algorithm's cost at the
// TRUE selectivity. The adaptive algorithm's cost is flat.
func (r Runner) ExtOpt() *Experiment {
	prm := params.Default()
	trueGroups := prm.Tuples / 4 // deep in Rep territory
	factors := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 1e1, 1e2}
	rows := optimizer.Sweep(prm, trueGroups, factors)
	e := &Experiment{
		ID:     "ext-opt",
		Title:  fmt.Sprintf("Static optimizer vs estimation error (true groups = %d)", trueGroups),
		XLabel: "estimate/true",
		YLabel: "seconds",
		Notes:  "The static pick pays for wrong estimates; Adaptive Two Phase does not.",
	}
	var static, adaptive, oracle Series
	static.Name, adaptive.Name, oracle.Name = "Static-pick", "A-2P", "Oracle"
	for _, row := range rows {
		static.Points = append(static.Points, Point{X: row.ErrorFactor, Y: row.StaticCost})
		adaptive.Points = append(adaptive.Points, Point{X: row.ErrorFactor, Y: row.AdaptiveCost})
		oracle.Points = append(oracle.Points, Point{X: row.ErrorFactor, Y: row.OracleCost})
	}
	e.Series = []Series{static, adaptive, oracle}
	return e
}

// ExtSort regenerates the hash-versus-sort aggregation comparison on the
// operator-plan substrate: Two Phase plans with the hash operators of the
// paper against the sort-based operators of Bitton et al.
func (r Runner) ExtSort() (*Experiment, error) {
	prm := r.simParams()
	e := &Experiment{
		ID:     "ext-sort",
		Title:  fmt.Sprintf("Hash vs sort-based aggregation (8 nodes, %d tuples)", prm.Tuples),
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "Two Phase operator plans; sort pays n·log n and run spooling.",
	}
	sweep := simGroupSweep(prm)
	kinds := []struct {
		name string
		sort bool
	}{{"Hash-2P", false}, {"Sort-2P", true}}
	for _, kind := range kinds {
		s := Series{Name: kind.name}
		for i, g := range sweep {
			rel := workload.Uniform(prm.N, prm.Tuples, g, r.Seed+int64(i))
			res, err := exec.RunPlan(prm, rel, func(c *cluster.Cluster) {
				exec.BuildTwoPhase(c, exec.PlanOptions{SortBased: kind.sort})
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(g), Y: res.Elapsed.Seconds()})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}

// ExtSimScaleup validates the scaleup claims of Figures 5 and 6 on the
// executing simulator rather than the closed-form model: per-node data and
// memory are held constant while the cluster grows, at the paper's high
// selectivity (0.25), on the fast network the scaleup figures assume. The
// adaptive algorithm must stay near-flat while the centralized
// coordinator's curve climbs with N.
func (r Runner) ExtSimScaleup() (*Experiment, error) {
	base := r.simParams()
	base.Network = params.LatencyNet
	perNode := base.Tuples / int64(base.N)
	e := &Experiment{
		ID:     "ext-simscaleup",
		Title:  fmt.Sprintf("Simulated scaleup, selectivity 0.25 (%d tuples/node, fast net)", perNode),
		XLabel: "nodes",
		YLabel: "seconds",
		Notes:  "Per-node data fixed; flat curves = ideal scaleup (execution analogue of Figures 5-6).",
	}
	algs := []core.Algorithm{core.C2P, core.TwoPhase, core.Rep, core.A2P}
	ns := []int{1, 2, 4, 8, 16}
	series := make([]Series, len(algs))
	for i, alg := range algs {
		series[i] = Series{Name: alg.String()}
	}
	for xi, n := range ns {
		prm := base
		prm.N = n
		prm.Tuples = perNode * int64(n)
		rel := workload.Uniform(n, prm.Tuples, prm.Tuples/4, r.Seed+int64(xi))
		for i, alg := range algs {
			y, err := runSim(prm, rel, alg, r.Seed)
			if err != nil {
				return nil, err
			}
			series[i].Points = append(series[i].Points, Point{X: float64(n), Y: y})
		}
	}
	e.Series = series
	return e, nil
}

// ExtBcast regenerates the broadcast-baseline comparison: the Bitton et
// al. [BBDW83] broadcast algorithm against Repartitioning and Adaptive Two
// Phase. The paper dismisses broadcasting in one sentence; the experiment
// shows the N× network bill that sentence stands on.
func (r Runner) ExtBcast() (*Experiment, error) {
	prm := r.simParams()
	e := &Experiment{
		ID:     "ext-bcast",
		Title:  fmt.Sprintf("Broadcast baseline (8 nodes, Ethernet, %d tuples)", prm.Tuples),
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "Broadcast ships every tuple N times; the paper dismissed it for a reason.",
	}
	sweep := simGroupSweep(prm)
	rels := make([]*workload.Relation, len(sweep))
	for i, g := range sweep {
		rels[i] = workload.Uniform(prm.N, prm.Tuples, g, r.Seed+int64(i))
	}
	for _, alg := range []core.Algorithm{core.Bcast, core.Rep, core.A2P} {
		s := Series{Name: alg.String()}
		for i, g := range sweep {
			y, err := runSim(prm, rels[i], alg, r.Seed)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(g), Y: y})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}

// ExtInputSkew regenerates the Section 6.1 discussion: one node holds a
// growing multiple of the others' tuples; the skewed node's extra scan I/O
// bounds every algorithm, but Repartitioning spreads the aggregation work
// while the Two Phase family concentrates it.
func (r Runner) ExtInputSkew() (*Experiment, error) {
	prm := r.simParams()
	groups := int64(prm.HashEntries) // mid-range group count
	e := &Experiment{
		ID:     "ext-inputskew",
		Title:  fmt.Sprintf("Input skew (8 nodes, %d tuples, %d groups)", prm.Tuples, groups),
		XLabel: "skew-factor",
		YLabel: "seconds",
		Notes:  "Node 0 holds skew-factor × the tuples of each other node.",
	}
	algs := []core.Algorithm{core.TwoPhase, core.Rep, core.A2P, core.ARep}
	factors := []float64{1, 2, 4, 8}
	rels := make([]*workload.Relation, len(factors))
	for i, f := range factors {
		rels[i] = workload.InputSkew(prm.N, prm.Tuples, groups, f, r.Seed+int64(i))
	}
	for _, alg := range algs {
		s := Series{Name: alg.String()}
		for i, f := range factors {
			y, err := runSim(prm, rels[i], alg, r.Seed)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: f, Y: y})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}
