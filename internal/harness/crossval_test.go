package harness

import (
	"math"
	"testing"

	"parallelagg/internal/core"
	"parallelagg/internal/cost"
	"parallelagg/internal/workload"
)

// TestModelAndSimulatorAgreeOnCrossover cross-validates the two
// evaluation substrates: the analytical model's 2P/Rep crossover
// selectivity and the discrete-event simulator's must land within an order
// of magnitude of each other on the same configuration. This is the
// paper's own validation argument ("the algorithms performed almost as
// expected from the analytical model") made mechanical.
func TestModelAndSimulatorAgreeOnCrossover(t *testing.T) {
	r := NewRunner(0.05, 1)
	prm := r.simParams()

	// Crossover per substrate: the smallest swept group count where Rep
	// beats 2P.
	sweep := simGroupSweep(prm)
	m := cost.New(prm)
	modelCross := -1.0
	for _, g := range sweep {
		s := float64(g) / float64(prm.Tuples)
		if m.Rep(s).Total() < m.TwoPhase(s).Total() {
			modelCross = float64(g)
			break
		}
	}
	simCross := -1.0
	for i, g := range sweep {
		rel := workload.Uniform(prm.N, prm.Tuples, g, r.Seed+int64(i))
		twoP, err := core.Run(prm, rel, core.TwoPhase, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Run(prm, workload.Uniform(prm.N, prm.Tuples, g, r.Seed+int64(i)), core.Rep, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Elapsed < twoP.Elapsed {
			simCross = float64(g)
			break
		}
	}
	if modelCross < 0 || simCross < 0 {
		t.Fatalf("no crossover found: model %v, sim %v", modelCross, simCross)
	}
	ratio := modelCross / simCross
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > 16 {
		t.Errorf("model crossover at %v groups, simulator at %v (ratio %.1f): substrates disagree",
			modelCross, simCross, ratio)
	}
	t.Logf("2P/Rep crossover: model %v groups, simulator %v groups", modelCross, simCross)
}

// TestModelAndSimulatorAgreeOnMagnitude: for a configuration both
// substrates model identically (Ethernet, mid selectivity), total times
// should agree within a small factor — they charge the same Table 1 costs.
func TestModelAndSimulatorAgreeOnMagnitude(t *testing.T) {
	r := NewRunner(0.05, 1)
	prm := r.simParams()
	g := int64(prm.HashEntries) / 2 // no overflow anywhere; cleanest comparison
	s := float64(g) / float64(prm.Tuples)

	rel := workload.Uniform(prm.N, prm.Tuples, g, 5)
	sim, err := core.Run(prm, rel, core.TwoPhase, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := cost.New(prm).TwoPhase(s).Total()
	simSec := sim.Elapsed.Seconds()
	ratio := math.Max(model/simSec, simSec/model)
	if ratio > 2.5 {
		t.Errorf("2P at %d groups: model %.2fs vs simulator %.2fs (ratio %.2f)", g, model, simSec, ratio)
	}
	t.Logf("2P at %d groups: model %.2fs, simulator %.2fs", g, model, simSec)
}
