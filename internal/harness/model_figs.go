package harness

import (
	"parallelagg/internal/cost"
	"parallelagg/internal/params"
)

// groupSweep returns the paper's x-axis: group counts from 1 (scalar
// aggregation) to |R|/2 (duplicate elimination) by decades.
func groupSweep(tuples int64) []float64 {
	var gs []float64
	for g := 1.0; g < float64(tuples)/2; g *= 10 {
		gs = append(gs, g)
	}
	gs = append(gs, float64(tuples)/2)
	return gs
}

// modelSeries evaluates f over the group sweep of prm.
func modelSeries(prm params.Params, name string, f func(s float64) cost.Breakdown) Series {
	var pts []Point
	for _, g := range groupSweep(prm.Tuples) {
		pts = append(pts, Point{X: g, Y: f(g / float64(prm.Tuples)).Total()})
	}
	return Series{Name: name, Points: pts}
}

// arepCfg returns the paper-aligned Adaptive Repartitioning tuning used by
// every model figure.
func arepCfg(prm params.Params) cost.ARepConfig {
	return cost.ARepConfig{InitSeg: prm.HashEntries / 2, SwitchRatio: 0.1}
}

// Fig1 regenerates Figure 1: the traditional algorithms (C-2P, 2P, Rep) on
// the 32-node configuration, with Rep shown on both the high-bandwidth
// network and the shared-bus Ethernet to expose the network sensitivity.
func (r Runner) Fig1() *Experiment {
	prm := params.Default()
	fast := cost.New(prm)
	eth := prm
	eth.Network = params.SharedBusNet
	slow := cost.New(eth)
	return &Experiment{
		ID:     "fig1",
		Title:  "Performance of traditional algorithms (32 nodes, 8M tuples)",
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "C-2P and 2P collapse at many groups; Rep wastes processors at few groups.",
		Series: []Series{
			modelSeries(prm, "C-2P", fast.C2P),
			modelSeries(prm, "2P", fast.TwoPhase),
			modelSeries(prm, "Rep", fast.Rep),
			modelSeries(prm, "Rep-ethernet", slow.Rep),
		},
	}
}

// Fig2 regenerates Figure 2: the same algorithms inside an operator
// pipeline — no base-relation scan or result-store I/O.
func (r Runner) Fig2() *Experiment {
	prm := params.Default()
	m := cost.New(prm)
	m.NoIO = true
	return &Experiment{
		ID:     "fig2",
		Title:  "Traditional algorithms in an operator pipeline (no scan/store I/O)",
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "Without scan I/O to hide behind, 2P's duplicated work and overflow dominate sooner.",
		Series: []Series{
			modelSeries(prm, "C-2P", m.C2P),
			modelSeries(prm, "2P", m.TwoPhase),
			modelSeries(prm, "Rep", m.Rep),
		},
	}
}

// Fig3 regenerates Figure 3: the adaptive algorithms against 2P and Rep on
// the fast-network 32-node configuration.
func (r Runner) Fig3() *Experiment {
	prm := params.Default()
	m := cost.New(prm)
	cross := 100 * prm.N
	return &Experiment{
		ID:     "fig3",
		Title:  "Relative performance of the adaptive approaches (32 nodes, fast network)",
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "All three adaptive algorithms track the lower envelope of 2P and Rep.",
		Series: []Series{
			modelSeries(prm, "2P", m.TwoPhase),
			modelSeries(prm, "Rep", m.Rep),
			modelSeries(prm, "Samp", func(s float64) cost.Breakdown { return m.Samp(s, 10*cross) }),
			modelSeries(prm, "A-2P", m.A2P),
			modelSeries(prm, "A-Rep", func(s float64) cost.Breakdown { return m.ARep(s, arepCfg(prm)) }),
		},
	}
}

// Fig4 regenerates Figure 4: the same comparison on the 8-node,
// limited-bandwidth (Ethernet) configuration with a 2M-tuple relation.
func (r Runner) Fig4() *Experiment {
	prm := params.Implementation()
	m := cost.New(prm)
	cross := 100 * prm.N
	return &Experiment{
		ID:     "fig4",
		Title:  "Performance on a low-bandwidth network (8 nodes, Ethernet, 2M tuples)",
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "The shared bus makes repartitioning expensive; A-2P repartitions only when it would otherwise spill.",
		Series: []Series{
			modelSeries(prm, "2P", m.TwoPhase),
			modelSeries(prm, "Rep", m.Rep),
			modelSeries(prm, "Samp", func(s float64) cost.Breakdown { return m.Samp(s, 10*cross) }),
			modelSeries(prm, "A-2P", m.A2P),
			modelSeries(prm, "A-Rep", func(s float64) cost.Breakdown { return m.ARep(s, arepCfg(prm)) }),
		},
	}
}

// scaleupSeries evaluates an algorithm's time as N grows with per-node data
// held constant (the paper's scaleup experiments).
func scaleupSeries(name string, sel float64, f func(m *cost.Model, s float64) float64) Series {
	perNode := params.Default().Tuples / int64(params.Default().N) // 250K
	var pts []Point
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		prm := params.Default()
		prm.N = n
		prm.Tuples = perNode * int64(n)
		pts = append(pts, Point{X: float64(n), Y: f(cost.New(prm), sel)})
	}
	return Series{Name: name, Points: pts}
}

func scaleupExperiment(id, title string, sel float64) *Experiment {
	return &Experiment{
		ID:     id,
		Title:  title,
		XLabel: "nodes",
		YLabel: "seconds",
		Notes:  "Per-node data fixed at 250K tuples; flat curves = ideal scaleup.",
		Series: []Series{
			scaleupSeries("C-2P", sel, func(m *cost.Model, s float64) float64 { return m.C2P(s).Total() }),
			scaleupSeries("2P", sel, func(m *cost.Model, s float64) float64 { return m.TwoPhase(s).Total() }),
			scaleupSeries("Rep", sel, func(m *cost.Model, s float64) float64 { return m.Rep(s).Total() }),
			scaleupSeries("Samp", sel, func(m *cost.Model, s float64) float64 {
				return m.Samp(s, 10*100*m.P.N).Total()
			}),
			scaleupSeries("A-2P", sel, func(m *cost.Model, s float64) float64 { return m.A2P(s).Total() }),
			scaleupSeries("A-Rep", sel, func(m *cost.Model, s float64) float64 {
				return m.ARep(s, arepCfg(m.P)).Total()
			}),
		},
	}
}

// Fig5 regenerates Figure 5: scaleup at selectivity 2.0e-6 (few groups).
func (r Runner) Fig5() *Experiment {
	return scaleupExperiment("fig5", "Scaleup, selectivity = 2.0e-6", 2.0e-6)
}

// Fig6 regenerates Figure 6: scaleup at selectivity 0.25 (many groups).
func (r Runner) Fig6() *Experiment {
	return scaleupExperiment("fig6", "Scaleup, selectivity = 0.25", 0.25)
}

// Fig7 regenerates Figure 7: the sample-size / performance trade-off of the
// Sampling algorithm on the 32-node configuration. Each series is one
// sample size; its decision threshold is sampleTuples/10 groups.
func (r Runner) Fig7() *Experiment {
	prm := params.Default()
	m := cost.New(prm)
	e := &Experiment{
		ID:     "fig7",
		Title:  "Sample size vs. performance trade-off (32 nodes)",
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "Bigger samples cost more up front but move the 2P/Rep crossover right.",
	}
	for _, st := range []int{3200, 32_000, 320_000} {
		st := st
		e.Series = append(e.Series, modelSeries(prm, "Samp-"+formatX(float64(st)),
			func(s float64) cost.Breakdown { return m.Samp(s, st) }))
	}
	e.Series = append(e.Series,
		modelSeries(prm, "2P", m.TwoPhase),
		modelSeries(prm, "Rep", m.Rep),
	)
	return e
}
