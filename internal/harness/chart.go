package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// chartMarkers identify series in RenderChart, in order.
const chartMarkers = "123456789abcdef"

// RenderChart draws the experiment as an ASCII line chart: X is the swept
// parameter (log-scaled when it spans more than two decades, as the
// paper's group-count axes do), Y is seconds (linear from zero). Each
// series plots with its own marker digit; the legend maps markers to
// series names. width and height are the plot-area size in characters
// (minimums 16×8 are enforced).
func (e *Experiment) RenderChart(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	xs := e.xs()
	if len(xs) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	minX, maxX := xs[0], xs[len(xs)-1]
	logX := minX > 0 && maxX/math.Max(minX, 1e-12) > 100
	xpos := func(x float64) int {
		if maxX == minX {
			return 0
		}
		var f float64
		if logX {
			f = (math.Log10(x) - math.Log10(minX)) / (math.Log10(maxX) - math.Log10(minX))
		} else {
			f = (x - minX) / (maxX - minX)
		}
		c := int(f * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c > width-1 {
			c = width - 1
		}
		return c
	}

	maxY := 0.0
	for _, s := range e.Series {
		for _, p := range s.Points {
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	ypos := func(y float64) int {
		f := y / maxY
		r := int(f * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range e.Series {
		mark := chartMarkers[si%len(chartMarkers)]
		for _, p := range s.Points {
			r, c := ypos(p.Y), xpos(p.X)
			if grid[r][c] == ' ' {
				grid[r][c] = mark
			} else if grid[r][c] != mark {
				grid[r][c] = '*' // collision of two series
			}
		}
	}

	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title); err != nil {
		return err
	}
	yTop := fmt.Sprintf("%.1f", maxY)
	pad := len(yTop)
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = yTop
		}
		if i == height-1 {
			label = fmt.Sprintf("%*.1f", pad, 0.0)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	scale := "linear"
	if logX {
		scale = "log"
	}
	fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(formatX(maxX)), formatX(minX), formatX(maxX))
	fmt.Fprintf(w, "%s  (%s, %s scale; Y in seconds)\n", strings.Repeat(" ", pad), e.XLabel, scale)
	for si, s := range e.Series {
		fmt.Fprintf(w, "%s  %c = %s\n", strings.Repeat(" ", pad), chartMarkers[si%len(chartMarkers)], s.Name)
	}
	return nil
}
