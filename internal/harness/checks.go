package harness

import (
	"fmt"
	"math"
)

// Check validates the qualitative claims the paper makes about the figure:
// who wins at the extremes, where the adaptive algorithms sit relative to
// the traditional envelope. A nil return means the regenerated data has the
// paper's shape.
func Check(e *Experiment) error {
	switch e.ID {
	case "fig1", "fig2":
		return checkTraditional(e)
	case "fig3", "fig4":
		return checkAdaptive(e, 1.6)
	case "fig5":
		return checkScaleup(e, 1.3, false)
	case "fig6":
		return checkScaleup(e, 1.4, true)
	case "fig7":
		return checkSampleTradeoff(e)
	case "fig8":
		return checkAdaptive(e, 1.6)
	case "fig9":
		return checkOutputSkew(e)
	case "ext-opt":
		return checkOptimizerSensitivity(e)
	case "ext-sort":
		return checkHashVsSort(e)
	case "ext-inputskew":
		return checkInputSkew(e)
	case "ext-bcast":
		return checkBroadcast(e)
	case "ext-simscaleup":
		return checkSimScaleup(e)
	default:
		return fmt.Errorf("harness: no check for %q", e.ID)
	}
}

// checkOptimizerSensitivity: a perfect estimate matches the oracle, a bad
// underestimate pays real regret, and the adaptive algorithm stays near
// the oracle at every error factor.
func checkOptimizerSensitivity(e *Experiment) error {
	static, err := e.Get("Static-pick")
	if err != nil {
		return err
	}
	adaptive, err := e.Get("A-2P")
	if err != nil {
		return err
	}
	oracle, err := e.Get("Oracle")
	if err != nil {
		return err
	}
	op, _ := oracle.Y(1)
	if sp, _ := static.Y(1); sp > op*1.001 {
		return fmt.Errorf("%s: perfect estimate has regret ×%.2f", e.ID, sp/op)
	}
	if sp, _ := static.Y(1e-4); sp < op*1.15 {
		return fmt.Errorf("%s: 10000x underestimate has regret only ×%.2f", e.ID, sp/op)
	}
	for _, p := range adaptive.Points {
		if p.Y > op*1.3 {
			return fmt.Errorf("%s: A-2P at factor %v = %.2fs, oracle %.2fs", e.ID, p.X, p.Y, op)
		}
	}
	return nil
}

// checkHashVsSort: hash aggregation never loses to the sort-based plan.
func checkHashVsSort(e *Experiment) error {
	hash, err := e.Get("Hash-2P")
	if err != nil {
		return err
	}
	srt, err := e.Get("Sort-2P")
	if err != nil {
		return err
	}
	for _, p := range hash.Points {
		sy, err := srt.Y(p.X)
		if err != nil {
			return err
		}
		if p.Y > sy*1.02 {
			return fmt.Errorf("%s: hash (%.2fs) lost to sort (%.2fs) at %v groups", e.ID, p.Y, sy, p.X)
		}
	}
	return nil
}

// checkBroadcast: the broadcast baseline loses to Repartitioning at every
// group count — the N× wire bill the paper's dismissal rests on.
func checkBroadcast(e *Experiment) error {
	bc, err := e.Get("Bcast")
	if err != nil {
		return err
	}
	rep, err := e.Get("Rep")
	if err != nil {
		return err
	}
	for _, p := range bc.Points {
		ry, err := rep.Y(p.X)
		if err != nil {
			return err
		}
		if p.Y <= ry {
			return fmt.Errorf("%s: Bcast (%.2fs) beat Rep (%.2fs) at %v groups", e.ID, p.Y, ry, p.X)
		}
	}
	return nil
}

// checkSimScaleup: in execution, like in the model, the adaptive algorithm
// scales near-ideally at high selectivity while C-2P's coordinator grows
// with the cluster.
func checkSimScaleup(e *Experiment) error {
	a2p, err := e.Get("A-2P")
	if err != nil {
		return err
	}
	if r := lastX(a2p).Y / firstX(a2p).Y; r > 1.8 {
		return fmt.Errorf("%s: A-2P degrades ×%.2f from N=%v to N=%v", e.ID, r, firstX(a2p).X, lastX(a2p).X)
	}
	c2p, err := e.Get("C-2P")
	if err != nil {
		return err
	}
	rc := lastX(c2p).Y / firstX(c2p).Y
	ra := lastX(a2p).Y / firstX(a2p).Y
	if rc < ra*1.5 {
		return fmt.Errorf("%s: C-2P degradation ×%.2f not clearly worse than A-2P ×%.2f", e.ID, rc, ra)
	}
	return nil
}

// checkInputSkew: every algorithm degrades with input skew (the skewed
// node's scan I/O bounds everyone), and the Two Phase family degrades at
// least as much as Repartitioning, which spreads the aggregation work.
func checkInputSkew(e *Experiment) error {
	ratio := func(name string) (float64, error) {
		s, err := e.Get(name)
		if err != nil {
			return 0, err
		}
		return lastX(s).Y / firstX(s).Y, nil
	}
	for _, name := range []string{"2P", "Rep", "A-2P", "A-Rep"} {
		r, err := ratio(name)
		if err != nil {
			return err
		}
		if r < 1.2 {
			return fmt.Errorf("%s: %s degraded only ×%.2f under 8x input skew", e.ID, name, r)
		}
	}
	r2p, _ := ratio("2P")
	rrep, _ := ratio("Rep")
	if r2p < rrep*0.9 {
		return fmt.Errorf("%s: 2P degradation ×%.2f markedly below Rep ×%.2f", e.ID, r2p, rrep)
	}
	return nil
}

func lastX(s *Series) Point  { return s.Points[len(s.Points)-1] }
func firstX(s *Series) Point { return s.Points[0] }

// checkTraditional: 2P wins at few groups, Rep wins at many groups, and
// C-2P is the worst of all at many groups.
func checkTraditional(e *Experiment) error {
	twoP, err := e.Get("2P")
	if err != nil {
		return err
	}
	rep, err := e.Get("Rep")
	if err != nil {
		return err
	}
	c2p, err := e.Get("C-2P")
	if err != nil {
		return err
	}
	if f2, fr := firstX(twoP).Y, firstX(rep).Y; f2 >= fr {
		return fmt.Errorf("%s: at %v groups 2P (%.2fs) should beat Rep (%.2fs)", e.ID, firstX(twoP).X, f2, fr)
	}
	if l2, lr := lastX(twoP).Y, lastX(rep).Y; lr >= l2 {
		return fmt.Errorf("%s: at %v groups Rep (%.2fs) should beat 2P (%.2fs)", e.ID, lastX(rep).X, lr, l2)
	}
	if lc, l2 := lastX(c2p).Y, lastX(twoP).Y; lc <= l2 {
		return fmt.Errorf("%s: at many groups C-2P (%.2fs) should be worse than 2P (%.2fs)", e.ID, lc, l2)
	}
	return nil
}

// checkAdaptive: A-2P tracks the lower envelope of {2P, Rep} within the
// tolerance everywhere; A-Rep matches Rep at the top end and stays within a
// looser bound elsewhere; Samp never strays far above the envelope plus its
// sampling overhead.
func checkAdaptive(e *Experiment, tol float64) error {
	twoP, err := e.Get("2P")
	if err != nil {
		return err
	}
	rep, err := e.Get("Rep")
	if err != nil {
		return err
	}
	a2p, err := e.Get("A-2P")
	if err != nil {
		return err
	}
	arep, err := e.Get("A-Rep")
	if err != nil {
		return err
	}
	for _, p := range a2p.Points {
		y2, err2 := twoP.Y(p.X)
		yr, errr := rep.Y(p.X)
		if err2 != nil || errr != nil {
			continue
		}
		env := math.Min(y2, yr)
		if p.Y > env*tol {
			return fmt.Errorf("%s: A-2P at %v groups = %.2fs, envelope %.2fs (tol ×%.2f)", e.ID, p.X, p.Y, env, tol)
		}
	}
	// A-Rep must be within tolerance of Rep at the highest group count.
	la, lr := lastX(arep), lastX(rep)
	if la.Y > lr.Y*tol {
		return fmt.Errorf("%s: A-Rep at %v groups = %.2fs, Rep = %.2fs", e.ID, la.X, la.Y, lr.Y)
	}
	// And within tolerance of 2P at the lowest (it falls back).
	fa, f2 := firstX(arep), firstX(twoP)
	if fa.Y > f2.Y*tol {
		return fmt.Errorf("%s: A-Rep at %v groups = %.2fs, 2P = %.2fs", e.ID, fa.X, fa.Y, f2.Y)
	}
	return nil
}

// checkScaleup: the adaptive algorithms stay near-flat as N grows;
// at high selectivity the centralized coordinator must visibly degrade.
func checkScaleup(e *Experiment, tol float64, c2pDegrades bool) error {
	for _, name := range []string{"A-2P", "A-Rep"} {
		s, err := e.Get(name)
		if err != nil {
			return err
		}
		f, l := firstX(s), lastX(s)
		if l.Y > f.Y*tol {
			return fmt.Errorf("%s: %s degrades ×%.2f from N=%v to N=%v (tol ×%.2f)",
				e.ID, name, l.Y/f.Y, f.X, l.X, tol)
		}
	}
	if c2pDegrades {
		s, err := e.Get("C-2P")
		if err != nil {
			return err
		}
		if r := lastX(s).Y / firstX(s).Y; r < 3 {
			return fmt.Errorf("%s: C-2P scaleup degradation ×%.2f, expected ≥3 at high selectivity", e.ID, r)
		}
	}
	return nil
}

// checkSampleTradeoff: at one group the smallest sample is the cheapest
// Samp variant; every variant approaches Rep at the top end.
func checkSampleTradeoff(e *Experiment) error {
	small, err := e.Get("Samp-3200")
	if err != nil {
		return err
	}
	large, err := e.Get("Samp-320000")
	if err != nil {
		return err
	}
	if firstX(small).Y >= firstX(large).Y {
		return fmt.Errorf("%s: small sample (%.2fs) should be cheaper than large (%.2fs) at 1 group",
			e.ID, firstX(small).Y, firstX(large).Y)
	}
	rep, err := e.Get("Rep")
	if err != nil {
		return err
	}
	for _, s := range []*Series{small, large} {
		if lastX(s).Y < lastX(rep).Y {
			return fmt.Errorf("%s: %s beats Rep at the top end — sampling overhead vanished", e.ID, s.Name)
		}
	}
	return nil
}

// checkOutputSkew: the paper's headline — under output skew both adaptive
// algorithms beat both traditional ones once the unskewed nodes overflow.
func checkOutputSkew(e *Experiment) error {
	twoP, err := e.Get("2P")
	if err != nil {
		return err
	}
	rep, err := e.Get("Rep")
	if err != nil {
		return err
	}
	a2p, err := e.Get("A-2P")
	if err != nil {
		return err
	}
	arep, err := e.Get("A-Rep")
	if err != nil {
		return err
	}
	p := lastX(a2p)
	env := math.Min(lastX(twoP).Y, lastX(rep).Y)
	if p.Y >= env {
		return fmt.Errorf("%s: A-2P (%.2fs) should beat best traditional (%.2fs) at %v groups",
			e.ID, p.Y, env, p.X)
	}
	if q := lastX(arep); q.Y >= env {
		return fmt.Errorf("%s: A-Rep (%.2fs) should beat best traditional (%.2fs) at %v groups",
			e.ID, q.Y, env, q.X)
	}
	return nil
}
