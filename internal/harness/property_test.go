package harness

import (
	"math/rand"
	"testing"

	"parallelagg/internal/core"
	"parallelagg/internal/live"
	"parallelagg/internal/params"
	"parallelagg/internal/tuple"
	"parallelagg/internal/workload"
	"parallelagg/sqlagg"
)

// propOracle is the single-threaded in-memory reference fold, written
// here independently of workload.Relation.Reference so the property
// test does not share its oracle with the code under test.
func propOracle(rel *workload.Relation) map[tuple.Key]tuple.AggState {
	out := make(map[tuple.Key]tuple.AggState)
	for _, part := range rel.PerNode {
		for _, t := range part {
			s, ok := out[t.Key]
			if !ok {
				out[t.Key] = tuple.NewState(t.Val)
				continue
			}
			s.Update(t.Val)
			out[t.Key] = s
		}
	}
	return out
}

// propWorkload draws one random workload: node count, size, group
// count, and distribution shape (uniform, input-skewed, output-skewed,
// Zipf) all vary.
func propWorkload(rng *rand.Rand) (*workload.Relation, params.Params) {
	nodes := []int{2, 3, 4, 8}[rng.Intn(4)]
	tuples := int64(500 + rng.Intn(2500))
	groups := 1 + rng.Int63n(tuples/2)
	seed := rng.Int63()

	var rel *workload.Relation
	switch rng.Intn(4) {
	case 0:
		rel = workload.Uniform(nodes, tuples, groups, seed)
	case 1:
		rel = workload.InputSkew(nodes, tuples, groups, 1+rng.Float64()*3, seed)
	case 2:
		rel = workload.OutputSkew(nodes, tuples, groups, seed)
	default:
		rel = workload.Zipf(nodes, tuples, groups, 1.1+rng.Float64(), seed)
	}

	prm := params.Implementation()
	prm.N = nodes
	prm.Tuples = rel.Tuples()
	// A small memory budget forces the interesting paths: spill passes,
	// the A-2P switch, the ARep fallback.
	prm.HashEntries = 8 << rng.Intn(8)
	return rel, prm
}

func sameGroups(t *testing.T, label string, got, want map[tuple.Key]tuple.AggState) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, oracle has %d", label, len(got), len(want))
	}
	for k, ws := range want {
		gs, ok := got[k]
		if !ok {
			t.Fatalf("%s: group %d missing", label, k)
		}
		if gs != ws {
			t.Fatalf("%s: group %d state %+v, oracle %+v", label, k, gs, ws)
		}
	}
}

// TestPropertySimMatchesOracle drives ~50 seeded random workloads —
// varying selectivity, skew shape and node count — through all six
// simulator algorithms and checks every result against the independent
// sequential oracle. This is the paper's exactness claim ("every
// algorithm produces the exact aggregation result") as a property test.
func TestPropertySimMatchesOracle(t *testing.T) {
	algs := []core.Algorithm{core.C2P, core.TwoPhase, core.Rep, core.Samp, core.A2P, core.ARep}
	rng := rand.New(rand.NewSource(20260805))
	const cases = 50
	for c := 0; c < cases; c++ {
		rel, prm := propWorkload(rng)
		want := propOracle(rel)
		optSeed := rng.Int63()
		for _, alg := range algs {
			res, err := core.Run(prm, rel, alg, core.Options{Seed: optSeed})
			if err != nil {
				t.Fatalf("case %d (%s, N=%d, T=%d, G=%d, M=%d): %v",
					c, alg, prm.N, rel.Tuples(), rel.Groups, prm.HashEntries, err)
			}
			sameGroups(t, rel.Name+"/"+alg.String(), res.Groups, want)
		}
	}
}

// TestPropertySQLMatchesOracle runs the same seeded random workloads
// through the SQL layer (and therefore the live goroutine engine) and
// checks COUNT/SUM/MIN/MAX per group against the oracle.
func TestPropertySQLMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(915))
	const cases = 50
	for c := 0; c < cases; c++ {
		rel, _ := propWorkload(rng)
		want := propOracle(rel)

		tbl := &sqlagg.Table{Schema: sqlagg.Schema{Cols: []sqlagg.Column{
			{Name: "k", Type: sqlagg.Int64},
			{Name: "v", Type: sqlagg.Int64},
		}}}
		for _, part := range rel.PerNode {
			for _, tp := range part {
				tbl.Rows = append(tbl.Rows, sqlagg.Row{sqlagg.IntVal(int64(tp.Key)), sqlagg.IntVal(tp.Val)})
			}
		}
		alg := live.Algorithms()[c%len(live.Algorithms())]
		res, err := sqlagg.Execute(tbl, sqlagg.Query{
			GroupBy: []string{"k"},
			Aggs: []sqlagg.Agg{
				{Func: sqlagg.Count, Col: "v"},
				{Func: sqlagg.Sum, Col: "v"},
				{Func: sqlagg.Min, Col: "v"},
				{Func: sqlagg.Max, Col: "v"},
			},
		}, live.Config{Workers: 4, TableEntries: 64}, alg)
		if err != nil {
			t.Fatalf("case %d (%s): %v", c, alg, err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("case %d (%s): %d result rows, oracle has %d groups", c, alg, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			k := tuple.Key(row[0].Int)
			ws, ok := want[k]
			if !ok {
				t.Fatalf("case %d (%s): unexpected group %d", c, alg, k)
			}
			if row[1].Int != ws.Count || row[2].Int != ws.Sum || row[3].Int != ws.Min || row[4].Int != ws.Max {
				t.Fatalf("case %d (%s): group %d = count %d sum %d min %d max %d, oracle %+v",
					c, alg, k, row[1].Int, row[2].Int, row[3].Int, row[4].Int, ws)
			}
		}
	}
}
