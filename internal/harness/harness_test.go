package harness

import (
	"bytes"
	"strings"
	"testing"
)

// quickRunner keeps the simulated figures small enough for unit tests while
// preserving the paper's data-to-memory ratios.
func quickRunner() Runner { return NewRunner(0.02, 1) }

func TestIDsCoverEveryPaperFigure(t *testing.T) {
	ids := IDs()
	if len(ids) != 9 {
		t.Fatalf("%d experiments, want 9 (figures 1-9)", len(ids))
	}
	for i, id := range ids {
		if want := "fig" + string(rune('1'+i)); id != want {
			t.Errorf("IDs()[%d] = %q, want %q", i, id, want)
		}
	}
}

func TestUnknownFigureRejected(t *testing.T) {
	if _, err := quickRunner().Figure("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestAllIDsCoverExtensions(t *testing.T) {
	all := AllIDs()
	if len(all) != len(IDs())+len(ExtIDs()) {
		t.Fatalf("AllIDs has %d entries", len(all))
	}
	if all[len(all)-1] != "ext-simscaleup" {
		t.Errorf("last experiment = %q", all[len(all)-1])
	}
}

// TestAllFiguresHavePaperShape regenerates every experiment — the paper's
// figures and the extensions — and validates the qualitative claims
// against the data.
func TestAllFiguresHavePaperShape(t *testing.T) {
	r := quickRunner()
	for _, id := range AllIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := r.Figure(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(e); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestModelFiguresSeriesComplete(t *testing.T) {
	r := quickRunner()
	want := map[string][]string{
		"fig1": {"C-2P", "2P", "Rep", "Rep-ethernet"},
		"fig2": {"C-2P", "2P", "Rep"},
		"fig3": {"2P", "Rep", "Samp", "A-2P", "A-Rep"},
		"fig4": {"2P", "Rep", "Samp", "A-2P", "A-Rep"},
		"fig5": {"C-2P", "2P", "Rep", "Samp", "A-2P", "A-Rep"},
		"fig6": {"C-2P", "2P", "Rep", "Samp", "A-2P", "A-Rep"},
		"fig7": {"Samp-3200", "Samp-32000", "Samp-320000", "2P", "Rep"},
	}
	for id, names := range want {
		e, err := r.Figure(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, name := range names {
			s, err := e.Get(name)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				continue
			}
			if len(s.Points) == 0 {
				t.Errorf("%s/%s: empty series", id, name)
			}
			for _, p := range s.Points {
				if p.Y <= 0 {
					t.Errorf("%s/%s: non-positive time %v at x=%v", id, name, p.Y, p.X)
				}
			}
		}
	}
}

func TestSimFiguresDeterministic(t *testing.T) {
	r := quickRunner()
	a, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j] != b.Series[i].Points[j] {
				t.Fatalf("fig9 not deterministic at series %d point %d", i, j)
			}
		}
	}
}

func TestRenderProducesAlignedTable(t *testing.T) {
	e, err := quickRunner().Figure("fig2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "groups", "C-2P", "2P", "Rep"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// Every data row has one cell per column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("render too short:\n%s", out)
	}
}

func TestSeriesYMissingPoint(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{X: 1, Y: 2}}}
	if _, err := s.Y(3); err == nil {
		t.Error("missing point not reported")
	}
	if y, err := s.Y(1); err != nil || y != 2 {
		t.Errorf("Y(1) = %v, %v", y, err)
	}
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(0, 0)
	if r.Scale != 0.125 || r.Seed != 1 {
		t.Errorf("defaults = %+v", r)
	}
}

func TestSimParamsScalesMemoryWithData(t *testing.T) {
	full := NewRunner(1, 1).simParams()
	small := NewRunner(0.05, 1).simParams()
	fullRatio := float64(full.Tuples) / float64(full.HashEntries)
	smallRatio := float64(small.Tuples) / float64(small.HashEntries)
	if fullRatio != smallRatio {
		t.Errorf("data/memory ratio changed under scaling: %v vs %v", fullRatio, smallRatio)
	}
}

func TestGroupSweepSpansScalarToDupElim(t *testing.T) {
	gs := groupSweep(8_000_000)
	if gs[0] != 1 {
		t.Errorf("sweep starts at %v, want 1", gs[0])
	}
	if gs[len(gs)-1] != 4_000_000 {
		t.Errorf("sweep ends at %v, want |R|/2", gs[len(gs)-1])
	}
}

func TestRenderCSV(t *testing.T) {
	e, err := quickRunner().Figure("fig2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "groups,C-2P,2P,Rep" {
		t.Errorf("csv header = %q", lines[0])
	}
	// One row per X value plus the header.
	if len(lines) != len(groupSweep(8_000_000))+1 {
		t.Errorf("csv has %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 3 {
			t.Errorf("csv row %q has wrong arity", l)
		}
	}
}

func TestRenderChart(t *testing.T) {
	e, err := quickRunner().Figure("fig1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.RenderChart(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1 = C-2P", "2 = 2P", "3 = Rep", "log scale"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The plot area contains at least one marker per series.
	for _, m := range []string{"1", "2", "3"} {
		if !strings.Contains(out, m) {
			t.Errorf("chart has no %q marker", m)
		}
	}
	// Tiny dimensions are clamped, not broken.
	buf.Reset()
	if err := e.RenderChart(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) < 10 {
		t.Error("clamped chart too small")
	}
}

func TestRenderChartEmpty(t *testing.T) {
	e := &Experiment{ID: "x", Title: "t"}
	var buf bytes.Buffer
	if err := e.RenderChart(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart output: %q", buf.String())
	}
}

func TestRenderMarkdown(t *testing.T) {
	e, err := quickRunner().Figure("fig2")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## fig2", "| groups | C-2P | 2P | Rep |", "|---|---|---|---|"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionFiguresSeriesComplete(t *testing.T) {
	r := quickRunner()
	want := map[string][]string{
		"ext-opt":        {"Static-pick", "A-2P", "Oracle"},
		"ext-sort":       {"Hash-2P", "Sort-2P"},
		"ext-inputskew":  {"2P", "Rep", "A-2P", "A-Rep"},
		"ext-bcast":      {"Bcast", "Rep", "A-2P"},
		"ext-simscaleup": {"C-2P", "2P", "Rep", "A-2P"},
	}
	for id, names := range want {
		e, err := r.Figure(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, name := range names {
			s, err := e.Get(name)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				continue
			}
			if len(s.Points) == 0 {
				t.Errorf("%s/%s: empty series", id, name)
			}
		}
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	es, err := quickRunner().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != len(AllIDs()) {
		t.Fatalf("All returned %d experiments, want %d", len(es), len(AllIDs()))
	}
	for i, e := range es {
		if e.ID != AllIDs()[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, AllIDs()[i])
		}
	}
}
