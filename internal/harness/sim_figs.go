package harness

import (
	"fmt"

	"parallelagg/internal/core"
	"parallelagg/internal/params"
	"parallelagg/internal/workload"
)

// simParams returns the Section 5 implementation configuration scaled by
// r.Scale. Both the tuple count AND the memory budget M scale, so the
// ratio of per-node data to hash-table capacity — which determines where
// overflow starts and where the adaptive switches fire — matches the
// paper's full-size study at every scale.
func (r Runner) simParams() params.Params {
	prm := params.Implementation()
	prm.Tuples = int64(float64(prm.Tuples) * r.Scale)
	if prm.Tuples < int64(prm.N) {
		prm.Tuples = int64(prm.N)
	}
	prm.HashEntries = int(float64(prm.HashEntries) * r.Scale)
	if prm.HashEntries < 4 {
		prm.HashEntries = 4
	}
	return prm
}

// simGroupSweep picks group counts spanning scalar aggregation to
// duplicate elimination for the scaled relation, crossing the memory size M
// where the interesting transitions happen.
func simGroupSweep(prm params.Params) []int64 {
	t := prm.Tuples
	m := int64(prm.HashEntries)
	candidates := []int64{1, 100, m / 4, m, 4 * m, t / 4, t / 2}
	var gs []int64
	var last int64 = -1
	for _, g := range candidates {
		if g < 1 {
			g = 1
		}
		if g > t/2 {
			g = t / 2
		}
		if g > last {
			gs = append(gs, g)
			last = g
		}
	}
	return gs
}

// simFigAlgorithms is the lineup of Figure 8/9: the two practical
// traditional algorithms plus the three proposed ones.
var simFigAlgorithms = []core.Algorithm{
	core.TwoPhase, core.Rep, core.Samp, core.A2P, core.ARep,
}

// runSim executes one algorithm over one relation and returns the
// simulated completion time in seconds.
func runSim(prm params.Params, rel *workload.Relation, alg core.Algorithm, seed int64) (float64, error) {
	res, err := core.Run(prm, rel, alg, core.Options{Seed: seed})
	if err != nil {
		return 0, fmt.Errorf("%v over %s: %w", alg, rel.Name, err)
	}
	return res.Elapsed.Seconds(), nil
}

// Fig8 regenerates Figure 8: the cluster implementation's relative
// performance — all five algorithms over uniformly distributed relations,
// 8 nodes on Ethernet.
func (r Runner) Fig8() (*Experiment, error) {
	prm := r.simParams()
	e := &Experiment{
		ID:     "fig8",
		Title:  fmt.Sprintf("Implementation results (8 nodes, Ethernet, %d tuples)", prm.Tuples),
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "Discrete-event execution of the real algorithms; virtual time.",
	}
	sweep := simGroupSweep(prm)
	rels := make([]*workload.Relation, len(sweep))
	for i, g := range sweep {
		rels[i] = workload.Uniform(prm.N, prm.Tuples, g, r.Seed+int64(i))
	}
	for _, alg := range simFigAlgorithms {
		s := Series{Name: alg.String()}
		for i, g := range sweep {
			y, err := runSim(prm, rels[i], alg, r.Seed)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(g), Y: y})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}

// Fig9 regenerates Figure 9: performance under output skew — half the
// nodes hold a single group each, the other half hold everything else.
func (r Runner) Fig9() (*Experiment, error) {
	prm := r.simParams()
	e := &Experiment{
		ID:     "fig9",
		Title:  fmt.Sprintf("Performance under output skew (8 nodes, Ethernet, %d tuples)", prm.Tuples),
		XLabel: "groups",
		YLabel: "seconds",
		Notes:  "Half the nodes hold one group each; adaptive nodes choose per-node strategies.",
	}
	// Group counts chosen so the unskewed nodes overflow memory while the
	// skewed ones never do — the regime where per-node adaptivity pays.
	m := int64(prm.HashEntries)
	var sweep []int64
	for _, g := range []int64{m, 2 * m, 4 * m, 8 * m} {
		if g <= prm.Tuples/2 {
			sweep = append(sweep, g)
		}
	}
	if len(sweep) == 0 {
		sweep = []int64{prm.Tuples / 2}
	}
	rels := make([]*workload.Relation, len(sweep))
	for i, g := range sweep {
		rels[i] = workload.OutputSkew(prm.N, prm.Tuples, g, r.Seed+int64(i))
	}
	for _, alg := range simFigAlgorithms {
		s := Series{Name: alg.String()}
		for i, g := range sweep {
			y, err := runSim(prm, rels[i], alg, r.Seed)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(g), Y: y})
		}
		e.Series = append(e.Series, s)
	}
	return e, nil
}
