package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("frames_total", "frames")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterVecSeparatesSeries(t *testing.T) {
	r := New()
	v := r.CounterVec("bytes_total", "bytes per peer", "peer")
	v.With("0").Add(10)
	v.With("1").Add(20)
	v.With("0").Add(5)
	if got := v.With("0").Value(); got != 15 {
		t.Fatalf(`With("0") = %d, want 15`, got)
	}
	if got := v.With("1").Value(); got != 20 {
		t.Fatalf(`With("1") = %d, want 20`, got)
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("occupancy", "entries")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
	g.Max(10)
	g.Max(2) // lower: ignored
	if got := g.Value(); got != 10 {
		t.Fatalf("after Max: Value = %d, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("frame_bytes", "frame sizes", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5122 {
		t.Fatalf("count=%d sum=%d, want 5 and 5122", h.Count(), h.Sum())
	}
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`frame_bytes_bucket{le="10"} 2`,
		`frame_bytes_bucket{le="100"} 4`,
		`frame_bytes_bucket{le="1000"} 4`,
		`frame_bytes_bucket{le="+Inf"} 5`,
		`frame_bytes_sum 5122`,
		`frame_bytes_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", []int64{1}).Observe(1)
	r.CounterVec("d", "", "l").With("x").Add(1)
	r.GaugeVec("e", "", "l").With("x").Max(1)
	r.HistogramVec("f", "", []int64{1}, "l").With("x").Observe(1)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %q, want empty", got)
	}
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry WriteProm = (%v, %q)", err, b.String())
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []string) []byte {
		r := New()
		v := r.CounterVec("zz_total", "", "peer")
		g := r.GaugeVec("aa_now", "", "node")
		for _, p := range order {
			v.With(p).Inc()
			g.With(p).Set(int64(len(p)))
		}
		return r.Snapshot()
	}
	a := build([]string{"2", "0", "1"})
	b := build([]string{"1", "2", "0"})
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ with registration order:\n%s\nvs\n%s", a, b)
	}
	// aa_now must serialize before zz_total, and peers in value order.
	s := string(a)
	if !strings.Contains(s, "aa_now") || strings.Index(s, "aa_now") > strings.Index(s, "zz_total") {
		t.Fatalf("families not name-sorted:\n%s", s)
	}
	if strings.Index(s, `peer="0"`) > strings.Index(s, `peer="1"`) {
		t.Fatalf("series not label-sorted:\n%s", s)
	}
}

func TestReregisterSameSchemaSharesState(t *testing.T) {
	r := New()
	r.Counter("x_total", "help").Add(3)
	if got := r.Counter("x_total", "help").Value(); got != 3 {
		t.Fatalf("re-resolved counter = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestWriteJSONIsValidAndDeterministic(t *testing.T) {
	r := New()
	r.CounterVec("c_total", "counts", "node").With("1").Add(4)
	r.Gauge("g_now", `quo"te`).Set(-2)
	r.Histogram("h_ns", "", []int64{100, 200}).Observe(150)
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two WriteJSON calls differ")
	}
	var doc struct {
		Families []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels map[string]string `json:"labels"`
				Value  *int64            `json:"value"`
				Sum    *int64            `json:"sum"`
				Count  *int64            `json:"count"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b1.String())
	}
	if len(doc.Families) != 3 {
		t.Fatalf("got %d families, want 3", len(doc.Families))
	}
	if doc.Families[0].Name != "c_total" || *doc.Families[0].Series[0].Value != 4 {
		t.Fatalf("unexpected first family: %+v", doc.Families[0])
	}
	if doc.Families[2].Name != "h_ns" || *doc.Families[2].Series[0].Sum != 150 {
		t.Fatalf("unexpected histogram family: %+v", doc.Families[2])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "", "addr").With(`a"b\c` + "\n").Inc()
	out := string(r.Snapshot())
	want := `esc_total{addr="a\"b\\c\n"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped series missing; got:\n%s", out)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	v := r.CounterVec("conc_total", "", "w")
	h := r.Histogram("conc_ns", "", []int64{8, 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With("x")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := v.With("x").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
