package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesMetricsAndJSON(t *testing.T) {
	r := New()
	r.CounterVec("peer_bytes_total", "bytes", "peer").With("2").Add(99)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, `peer_bytes_total{peer="2"} 99`) {
		t.Errorf("/metrics missing series:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(body, `"peer_bytes_total"`) {
		t.Errorf("/metrics.json missing family:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/metrics.json content type = %q", ctype)
	}

	// pprof is mounted on the private mux.
	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}
