// Package obs is the repo's dependency-free observability layer: a
// metrics registry of counters, gauges and histograms organised into
// labeled families, exported deterministically (sorted families and
// series, so a same-seed simulation serializes byte-identically) and
// over HTTP in Prometheus text format and JSON.
//
// Design constraints, in order:
//
//   - Hot path is lock-free: instruments are resolved once (a mutexed
//     map lookup) and then updated with a single atomic add.
//   - Everything is int64. The quantities this repo measures — bytes,
//     tuples, nanoseconds, retries — are integers, and integer-only
//     metrics keep snapshots exactly reproducible across runs and
//     platforms (no float summation order to worry about).
//   - Nil-safety: methods on nil instruments, vectors and registries
//     are no-ops, so instrumented code needs no "if metrics enabled"
//     branches and a disabled registry costs nothing.
//
// The simulator stamps snapshots with virtual time (a gauge set from
// des.Time), never the wall clock, which is what makes the determinism
// contract of DESIGN.md §9 possible.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically non-decreasing cumulative metric.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by d. It panics on negative d (counters
// never go down; use a Gauge for that) and no-ops on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	if d < 0 {
		panic(fmt.Sprintf("obs: counter decreased by %d", -d))
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Max raises the gauge to v if v is larger — a high-water mark. The
// CAS loop keeps it safe under concurrent observers.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound cumulative histogram. Bounds are
// inclusive upper edges in ascending order; one implicit +Inf bucket
// catches the rest.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// series is one labeled instance inside a family.
type series struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one named metric with a fixed label schema.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []int64 // histograms only

	mu sync.Mutex
	//aggvet:guard mu
	series map[string]*series
}

// get returns the series for the given label values, creating it on
// first use.
func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels %v, got %d values %v",
			f.name, len(f.labels), f.labels, len(vals), vals))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), vals...)}
		switch f.kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// sorted returns the family's series ordered by label values, the
// deterministic snapshot order.
func (f *family) sorted() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelVals, out[j].labelVals
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Registry holds metric families. The zero value is not usable; call
// New. A nil *Registry is a valid "metrics disabled" registry: every
// lookup returns nil instruments whose methods no-op.
type Registry struct {
	mu sync.Mutex
	//aggvet:guard mu
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register finds or creates a family, enforcing a consistent schema
// for re-registrations (same kind, labels and bounds).
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []int64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, name))
		}
	}
	if kind == KindHistogram {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending: %v", name, bounds))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:   name,
			help:   help,
			kind:   kind,
			labels: append([]string(nil), labels...),
			bounds: append([]int64(nil), bounds...),
			series: make(map[string]*series),
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || !equalStrings(f.labels, labels) || !equalInts(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
	}
	return f
}

// CounterVec declares (or finds) a counter family with the given label
// keys. Nil registries return a nil vector whose With returns nil.
type CounterVec struct{ f *family }

// Counter returns the unlabeled counter named name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, KindCounter, labelKeys, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelVals).c
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// Gauge returns the unlabeled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, KindGauge, labelKeys, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelVals).g
}

// HistogramVec is a labeled histogram family with shared bucket bounds.
type HistogramVec struct{ f *family }

// Histogram returns the unlabeled histogram named name with the given
// inclusive ascending bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	return r.HistogramVec(name, help, bounds).With()
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []int64, labelKeys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labelKeys, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(labelVals).h
}

// sortedFamilies returns the registry's families in name order.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]*family, len(names))
	for i, n := range names {
		r.mu.Lock()
		out[i] = r.families[n]
		r.mu.Unlock()
	}
	return out
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
