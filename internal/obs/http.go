package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry:
//
//	/metrics        Prometheus text exposition (deterministic order)
//	/metrics.json   the same data as JSON
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The pprof handlers are mounted explicitly on a private mux so that
// importing obs never mutates http.DefaultServeMux.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts serving the registry's Handler on ln in a background
// goroutine and returns the server. The caller owns shutdown: call
// srv.Close (which also closes ln) when done.
func Serve(ln net.Listener, r *Registry) *http.Server {
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv
}
