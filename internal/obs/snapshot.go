package obs

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProm writes the registry in Prometheus text exposition format,
// families sorted by name and series by label values, so the output is
// a deterministic function of the metric values. A nil registry writes
// nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sorted() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(f.labels, s.labelVals, "", ""), s.c.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(f.labels, s.labelVals, "", ""), s.g.Value())
		return err
	case KindHistogram:
		// Cumulative buckets, then _sum and _count, per the format.
		cum := int64(0)
		for i, b := range s.h.bounds {
			cum += s.h.counts[i].Load()
			le := strconv.FormatInt(b, 10)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelSet(f.labels, s.labelVals, "le", le), cum); err != nil {
				return err
			}
		}
		cum += s.h.counts[len(s.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelSet(f.labels, s.labelVals, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, labelSet(f.labels, s.labelVals, "", ""), s.h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelSet(f.labels, s.labelVals, "", ""), s.h.Count())
		return err
	}
	return nil
}

// labelSet renders {k="v",...}, optionally with one extra label
// appended (the histogram "le"), or "" when there are no labels.
func labelSet(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Snapshot returns the deterministic text serialization of the
// registry (the Prometheus exposition, sorted). Two runs that perform
// the same metric updates produce byte-identical snapshots; the
// simulator's same-seed determinism tests and CI diff exactly this.
func (r *Registry) Snapshot() []byte {
	var b bytes.Buffer
	// bytes.Buffer writes cannot fail.
	_ = r.WriteProm(&b)
	return b.Bytes()
}

// WriteJSON writes the registry as a single JSON object, families and
// series in the same deterministic order as WriteProm. The format is
// hand-rolled (sorted, no struct tags to drift) and stable:
//
//	{"families":[{"name":...,"type":...,"help":...,
//	  "series":[{"labels":{...},"value":N}
//	            |{"labels":{...},"buckets":[{"le":...,"count":N}],
//	              "sum":N,"count":N}]}]}
func (r *Registry) WriteJSON(w io.Writer) error {
	var b bytes.Buffer
	b.WriteString(`{"families":[`)
	for fi, f := range r.sortedFamilies() {
		if fi > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":%s,"type":%s,"help":%s,"series":[`,
			jsonStr(f.name), jsonStr(f.kind.String()), jsonStr(f.help))
		for si, s := range f.sorted() {
			if si > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`{"labels":{`)
			for li, k := range f.labels {
				if li > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `%s:%s`, jsonStr(k), jsonStr(s.labelVals[li]))
			}
			b.WriteString(`}`)
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, `,"value":%d}`, s.c.Value())
			case KindGauge:
				fmt.Fprintf(&b, `,"value":%d}`, s.g.Value())
			case KindHistogram:
				b.WriteString(`,"buckets":[`)
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, `{"le":%d,"count":%d}`, bound, cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				if len(s.h.bounds) > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `{"le":"+Inf","count":%d}`, cum)
				fmt.Fprintf(&b, `],"sum":%d,"count":%d}`, s.h.Sum(), s.h.Count())
			}
		}
		b.WriteString(`]}`)
	}
	b.WriteString(`]}`)
	_, err := w.Write(b.Bytes())
	return err
}

func jsonStr(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range s {
		switch c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if c < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, c)
			} else {
				b.WriteRune(c)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
