package live_test

import (
	"testing"

	"parallelagg/live"
)

func TestPublicLiveEngine(t *testing.T) {
	in := make([]live.Tuple, 10_000)
	for i := range in {
		in[i] = live.Tuple{Key: live.Key(i % 100), Val: int64(i)}
	}
	for _, alg := range live.Algorithms() {
		res, err := live.Aggregate(live.Config{Workers: 4, TableEntries: 32}, in, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Groups) != 100 {
			t.Errorf("%v: %d groups, want 100", alg, len(res.Groups))
		}
		var count int64
		for _, s := range res.Groups {
			count += s.Count
		}
		if count != 10_000 {
			t.Errorf("%v: counts sum to %d", alg, count)
		}
	}
}

func TestPublicPartitionedPlacement(t *testing.T) {
	parts := [][]live.Tuple{
		{{Key: 1, Val: 5}, {Key: 1, Val: 7}},
		{{Key: 2, Val: 1}},
	}
	res, err := live.AggregatePartitioned(live.Config{}, parts, live.TwoPhase)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[1].Sum != 12 || res.Groups[2].Count != 1 {
		t.Errorf("groups = %v", res.Groups)
	}
}

func TestNewState(t *testing.T) {
	s := live.NewState(9)
	if s.Count != 1 || s.Sum != 9 || s.Min != 9 || s.Max != 9 {
		t.Errorf("NewState = %v", s)
	}
}
