// Package live re-exports the real (non-simulated) parallel aggregation
// engine: the paper's algorithms executed with actual goroutines and
// channels on the host machine. Use it when you want a fast multicore
// GROUP BY rather than a reproducible simulation; see parallelagg's root
// package for the simulated cluster and the paper's experiments.
//
//	res, err := live.Aggregate(live.Config{}, tuples, live.AdaptiveTwoPhase)
package live

import (
	"parallelagg/internal/live"
	"parallelagg/internal/tuple"
)

// Tuple is a projected relation tuple: group key and aggregated value.
type Tuple = tuple.Tuple

// Key is a GROUP BY key; AggState the mergeable aggregate state of one
// group (COUNT/SUM/MIN/MAX; AVG = Sum/Count).
type (
	Key      = tuple.Key
	AggState = tuple.AggState
)

// NewState returns the aggregate state of a group holding one value.
func NewState(v int64) AggState { return tuple.NewState(v) }

// Algorithm selects the parallel strategy.
type Algorithm = live.Algorithm

// The implemented strategies.
const (
	TwoPhase               = live.TwoPhase
	Repartitioning         = live.Repartitioning
	AdaptiveTwoPhase       = live.AdaptiveTwoPhase
	AdaptiveRepartitioning = live.AdaptiveRepartitioning
	Shared                 = live.Shared
	AdaptiveShared         = live.AdaptiveShared
)

// Algorithms lists the implemented strategies.
func Algorithms() []Algorithm { return live.Algorithms() }

// Config tunes the engine; the zero value uses GOMAXPROCS workers and
// unbounded hash tables.
type Config = live.Config

// Result is the outcome of one parallel aggregation.
type Result = live.Result

// Aggregate runs alg over the tuples with cfg.Workers parallel workers.
func Aggregate(cfg Config, tuples []Tuple, alg Algorithm) (*Result, error) {
	return live.Aggregate(cfg, tuples, alg)
}

// AggregatePartitioned is Aggregate with caller-controlled placement (one
// input slice per worker), for reproducing the paper's skew scenarios.
func AggregatePartitioned(cfg Config, parts [][]Tuple, alg Algorithm) (*Result, error) {
	return live.AggregatePartitioned(cfg, parts, alg)
}
