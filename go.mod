module parallelagg

go 1.22
