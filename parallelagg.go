// Package parallelagg is a library reproduction of "Adaptive Parallel
// Aggregation Algorithms" (Shatdal & Naughton, SIGMOD 1995). It implements
// the three traditional parallel GROUP BY strategies — Centralized Two
// Phase, Two Phase and Repartitioning — and the paper's three adaptive
// algorithms — Sampling, Adaptive Two Phase and Adaptive Repartitioning —
// on a deterministic discrete-event simulation of a shared-nothing cluster,
// plus the paper's analytical cost models.
//
// The aggregation itself is computed for real over synthetic relations
// (every run is verified against a sequential reference); only time is
// virtual, charged from the paper's Table 1 parameters, so experiments are
// exactly reproducible on any machine.
//
// Quick start:
//
//	prm := parallelagg.DefaultParams()
//	rel := parallelagg.Uniform(prm.N, 100_000, 500, 1)
//	res, err := parallelagg.Aggregate(prm, rel, parallelagg.AdaptiveTwoPhase, parallelagg.Options{})
//	// res.Groups holds the verified aggregates; res.Elapsed the simulated time.
//
// See the examples/ directory for runnable scenarios and cmd/aggbench for
// the harness that regenerates every figure in the paper's evaluation.
package parallelagg

import (
	"net"
	"net/http"

	"parallelagg/internal/core"
	"parallelagg/internal/cost"
	"parallelagg/internal/des"
	"parallelagg/internal/harness"
	"parallelagg/internal/obs"
	"parallelagg/internal/params"
	"parallelagg/internal/trace"
	"parallelagg/internal/tuple"
	"parallelagg/internal/workload"
)

// Params is the cluster and cost configuration (Table 1 of the paper).
type Params = params.Params

// NetworkKind selects between the latency-only (high bandwidth) and
// shared-bus (Ethernet) interconnect models.
type NetworkKind = params.NetworkKind

// Interconnect models.
const (
	LatencyNet   = params.LatencyNet
	SharedBusNet = params.SharedBusNet
)

// DefaultParams returns the paper's analytical-model configuration:
// 32 nodes, 40 MIPS each, an 8M-tuple relation, a fast network.
func DefaultParams() Params { return params.Default() }

// ImplementationParams returns the paper's Section 5 workstation-cluster
// configuration: 8 nodes, 2M tuples, a 10 Mbit/s shared Ethernet.
func ImplementationParams() Params { return params.Implementation() }

// Algorithm selects a parallel aggregation strategy.
type Algorithm = core.Algorithm

// The implemented algorithms, named as in the paper.
const (
	CentralizedTwoPhase    = core.C2P
	TwoPhase               = core.TwoPhase
	OptimizedTwoPhase      = core.OptTwoPhase
	Repartitioning         = core.Rep
	Sampling               = core.Samp
	AdaptiveTwoPhase       = core.A2P
	AdaptiveRepartitioning = core.ARep
	// Broadcast is the Bitton et al. baseline the paper dismisses (§1).
	Broadcast = core.Bcast
)

// Algorithms lists every implemented algorithm in presentation order.
func Algorithms() []Algorithm { return core.All() }

// Options tunes the adaptive and sampling behaviour; the zero value uses
// the paper's defaults.
type Options = core.Options

// Result is the outcome of one simulated execution: verified result
// groups, elapsed virtual time, per-node metrics and network totals.
type Result = core.Result

// Key is a GROUP BY key; AggState the running COUNT/SUM/MIN/MAX (and AVG)
// state of one group.
type (
	Key      = tuple.Key
	AggState = tuple.AggState
)

// Duration is virtual time, in nanoseconds.
type Duration = des.Duration

// TraceLog is the execution timeline recorded when Options.Trace is set:
// per-node phase transitions, adaptive switches, spill passes and the
// sampling decision, each stamped with virtual time.
type TraceLog = trace.Log

// Relation is a generated relation declustered across cluster nodes.
type Relation = workload.Relation

// Workload generators (all deterministic in their seed).
var (
	// Uniform: exactly groups distinct keys, uniformly distributed,
	// round-robin declustered — the paper's default workload.
	Uniform = workload.Uniform
	// DupElim: a duplicate-elimination workload with tuples/dupFactor
	// distinct keys.
	DupElim = workload.DupElim
	// InputSkew: node 0 holds skewFactor× the tuples of the others.
	InputSkew = workload.InputSkew
	// OutputSkew: half the nodes hold a single group each (Section 6).
	OutputSkew = workload.OutputSkew
	// RangePartitioned: groups are node-local by key range (extension;
	// contrasts with the paper's round-robin placement).
	RangePartitioned = workload.RangePartitioned
	// Zipf: group frequencies follow a Zipf law (extension).
	Zipf = workload.Zipf
	// TPCD: TPC-D-flavoured lineitem workloads (Q1-like and Q3-like).
	TPCD = workload.TPCD
)

// TPCDQuery identifies a TPC-D-flavoured workload shape.
type TPCDQuery = workload.TPCDQuery

// TPC-D query shapes for the TPCD generator.
const (
	TPCDQ1 = workload.TPCDQ1
	TPCDQ3 = workload.TPCDQ3
)

// Aggregate executes alg over rel on a simulated cluster configured by prm
// and returns timing, metrics, and the (reference-verified) result groups.
func Aggregate(prm Params, rel *Relation, alg Algorithm, opt Options) (*Result, error) {
	return core.Run(prm, rel, alg, opt)
}

// MetricsRegistry collects integer-valued counters, gauges and
// histograms from a run. Attach one via Options.Obs; after the run,
// Snapshot() serializes every series in Prometheus text format, sorted,
// and is byte-identical across same-seed simulations (DESIGN.md §9).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry ready to attach to
// Options.Obs (simulator), dist.Config.Obs, or live.Config.Obs.
func NewMetricsRegistry() *MetricsRegistry { return obs.New() }

// ServeMetrics exposes a registry over HTTP on ln: Prometheus text on
// /metrics, JSON on /metrics.json, and net/http/pprof under
// /debug/pprof/. The returned server is already serving; Close it to
// stop.
func ServeMetrics(ln net.Listener, r *MetricsRegistry) *http.Server { return obs.Serve(ln, r) }

// CostModel evaluates the paper's closed-form cost equations (Sections
// 2–4); CostBreakdown is a per-component estimate in seconds.
type (
	CostModel      = cost.Model
	CostBreakdown  = cost.Breakdown
	ARepCostConfig = cost.ARepConfig
)

// NewCostModel returns an analytical model over prm.
func NewCostModel(prm Params) *CostModel { return cost.New(prm) }

// Experiment is one regenerated table/figure of the paper's evaluation;
// ExperimentRunner produces them.
type (
	Experiment       = harness.Experiment
	ExperimentRunner = harness.Runner
)

// NewExperimentRunner returns a runner; scale 0 selects the quick default
// (an eighth of the paper's 2M-tuple implementation study), seed 0 selects
// seed 1. Model-based figures (1–7) ignore the scale.
func NewExperimentRunner(scale float64, seed int64) ExperimentRunner {
	return harness.NewRunner(scale, seed)
}

// ExperimentIDs lists the paper-figure experiments ("fig1" … "fig9").
func ExperimentIDs() []string { return harness.IDs() }

// ExtensionExperimentIDs lists the extension experiments that follow up on
// the paper's discussion sections: "ext-opt" (static optimizer vs
// estimation error), "ext-sort" (hash vs sort-based aggregation),
// "ext-inputskew" (Section 6.1's input skew), "ext-bcast" (the broadcast
// baseline the paper dismisses) and "ext-simscaleup" (Figures 5-6 validated
// in execution).
func ExtensionExperimentIDs() []string { return harness.ExtIDs() }

// AllExperimentIDs lists every regenerable experiment.
func AllExperimentIDs() []string { return harness.AllIDs() }

// CheckExperiment validates an experiment's data against the paper's
// qualitative claims (who wins where, crossover positions).
func CheckExperiment(e *Experiment) error { return harness.Check(e) }
