GO ?= go
AGGVET := bin/aggvet

.PHONY: build test vet lint lint-fixtures race chaos check bench bench-json fuzz cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own determinism/networking invariants (DESIGN.md §8),
# enforced by the custom multichecker in cmd/aggvet via the vettool
# protocol. The script prints a per-analyzer diagnostic summary and
# exits non-zero on any finding; coverage of sqlagg/ and live/ is
# asserted, not assumed.
lint:
	GO="$(GO)" AGGVET="$(AGGVET)" sh scripts/lint.sh

# The analyzers' own test suites: CFG/dataflow engine tests plus the
# hermetic want-comment fixtures under internal/analysis/*/testdata.
lint-fixtures:
	$(GO) test ./internal/analysis/... ./cmd/aggvet/

race:
	$(GO) test -race ./...

# The distributed layer's fault-injection scenarios, race-checked.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/dist/... ./internal/faultnet/...

# Short fuzz sweep over the wire decoder and the fault-spec parser —
# the same smoke CI runs; use `go test -fuzz=... -fuzztime=10m` for a
# real session.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeFrame' -fuzztime 15s ./internal/dist/
	$(GO) test -run '^$$' -fuzz 'FuzzParseSpec' -fuzztime 15s ./internal/faultnet/
	$(GO) test -run '^$$' -fuzz 'FuzzInsertMergeDrain' -fuzztime 15s ./internal/aggtable/
	$(GO) test -run '^$$' -fuzz 'FuzzConcurrentInsertMerge' -fuzztime 15s ./internal/aggtable/
	$(GO) test -run '^$$' -fuzz 'FuzzBatchUpdate' -fuzztime 15s ./internal/aggtable/

# Statement-coverage ratchet against scripts/coverage-floor.txt.
cover:
	GO="$(GO)" sh scripts/coverage.sh

# What CI runs (CI additionally shuffles test order and runs
# staticcheck/govulncheck, which need network access to install).
check: vet lint race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Machine-readable perf snapshot: ns/op (and simulated seconds) per
# algorithm × selectivity, written to BENCH_pr3.json.
bench-json:
	GO="$(GO)" sh scripts/bench-json.sh
	$(GO) run ./cmd/aggbench -microbench -out BENCH_pr5.json
	$(GO) run ./cmd/aggbench -sharedbench -out BENCH_pr9.json
