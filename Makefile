GO ?= go

.PHONY: build test vet race chaos check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The distributed layer's fault-injection scenarios, race-checked.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/dist/... ./internal/faultnet/...

# What CI runs.
check: vet race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...
