GO ?= go
AGGVET := bin/aggvet

.PHONY: build test vet lint race chaos check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own determinism/networking invariants (DESIGN.md §8),
# enforced by the custom multichecker in cmd/aggvet via the vettool
# protocol.
lint:
	$(GO) build -o $(AGGVET) ./cmd/aggvet
	$(GO) vet -vettool=$(abspath $(AGGVET)) ./...

race:
	$(GO) test -race ./...

# The distributed layer's fault-injection scenarios, race-checked.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/dist/... ./internal/faultnet/...

# What CI runs (CI additionally shuffles test order and runs
# staticcheck/govulncheck, which need network access to install).
check: vet lint race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...
