// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark reports, besides the usual wall-clock numbers,
// a "sim-s" metric: the simulated (virtual) execution time that the
// corresponding paper figure plots.
//
// Figures 1–7 are analytical-model sweeps; Figures 8–9 execute the real
// algorithms on the discrete-event cluster at a reduced scale that
// preserves the paper's data-to-memory ratio.
package parallelagg_test

import (
	"fmt"
	"parallelagg/live"
	"testing"

	"parallelagg"
)

// benchScale keeps the simulated figures fast under `go test -bench`.
const benchScale = 0.02

// benchModelFigure sweeps one analytical figure per iteration.
func benchModelFigure(b *testing.B, id string) {
	r := parallelagg.NewExperimentRunner(benchScale, 1)
	var last float64
	for i := 0; i < b.N; i++ {
		e, err := r.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		s := e.Series[len(e.Series)-1]
		last = s.Points[len(s.Points)-1].Y
	}
	b.ReportMetric(last, "sim-s")
}

// benchSimFigure executes one simulated figure per iteration.
func benchSimFigure(b *testing.B, id string) {
	r := parallelagg.NewExperimentRunner(benchScale, 1)
	var total float64
	for i := 0; i < b.N; i++ {
		e, err := r.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, s := range e.Series {
			for _, p := range s.Points {
				total += p.Y
			}
		}
	}
	b.ReportMetric(total, "sim-s")
}

// Table 1: the parameter set itself — validation and derived geometry.
func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := parallelagg.DefaultParams()
		if err := prm.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = prm.DiskPages(prm.Tuples)
		_ = prm.MsgPages(prm.Tuples)
	}
}

// Figures 1–7: analytical model sweeps.
func BenchmarkFig1Traditional(b *testing.B)        { benchModelFigure(b, "fig1") }
func BenchmarkFig2Pipeline(b *testing.B)           { benchModelFigure(b, "fig2") }
func BenchmarkFig3AdaptiveFastNet(b *testing.B)    { benchModelFigure(b, "fig3") }
func BenchmarkFig4AdaptiveEthernet(b *testing.B)   { benchModelFigure(b, "fig4") }
func BenchmarkFig5ScaleupLowSel(b *testing.B)      { benchModelFigure(b, "fig5") }
func BenchmarkFig6ScaleupHighSel(b *testing.B)     { benchModelFigure(b, "fig6") }
func BenchmarkFig7SampleSizeTradeoff(b *testing.B) { benchModelFigure(b, "fig7") }

// Figures 8–9: the discrete-event cluster implementation.
func BenchmarkFig8Implementation(b *testing.B) { benchSimFigure(b, "fig8") }
func BenchmarkFig9OutputSkew(b *testing.B)     { benchSimFigure(b, "fig9") }

// benchParams is the scaled implementation configuration used by the
// per-algorithm and ablation benchmarks below.
func benchParams() parallelagg.Params {
	prm := parallelagg.ImplementationParams()
	prm.Tuples = 40_000
	prm.HashEntries = 200 // same data:memory ratio as the paper's 2M/10K
	return prm
}

// BenchmarkAlgorithms runs every algorithm over the same mid-selectivity
// workload, reporting simulated seconds per algorithm.
func BenchmarkAlgorithms(b *testing.B) {
	prm := benchParams()
	rel := parallelagg.Uniform(prm.N, prm.Tuples, 2000, 1)
	for _, alg := range parallelagg.Algorithms() {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Elapsed.Seconds()
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// BenchmarkAlgorithmsSelectivity sweeps every algorithm across the
// selectivity axis the paper's adaptive argument turns on: the number
// of groups as a fraction of the input. Low selectivity keeps every
// table in memory (two-phase territory); high selectivity overflows
// them (repartitioning territory). `make bench-json` distills this
// sweep into BENCH_pr3.json.
func BenchmarkAlgorithmsSelectivity(b *testing.B) {
	prm := benchParams()
	for _, sel := range []float64{0.001, 0.05, 0.5} {
		groups := int64(sel * float64(prm.Tuples))
		rel := parallelagg.Uniform(prm.N, prm.Tuples, groups, 1)
		for _, alg := range parallelagg.Algorithms() {
			alg := alg
			b.Run(fmt.Sprintf("alg=%v/sel=%v", alg, sel), func(b *testing.B) {
				var sim float64
				for i := 0; i < b.N; i++ {
					res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
					if err != nil {
						b.Fatal(err)
					}
					sim = res.Elapsed.Seconds()
				}
				b.ReportMetric(sim, "sim-s")
			})
		}
	}
}

// Ablation: the A-2P switch trigger. The paper switches exactly at memory
// overflow; this ablation compares against switching earlier (half-full
// table, emulated by shrinking M) and never (plain 2P).
func BenchmarkAblationA2PSwitchTrigger(b *testing.B) {
	base := benchParams()
	rel := parallelagg.Uniform(base.N, base.Tuples, 4000, 2)
	cases := []struct {
		name string
		mem  int
		alg  parallelagg.Algorithm
	}{
		{"at-overflow-M", base.HashEntries, parallelagg.AdaptiveTwoPhase},
		{"early-M/2", base.HashEntries / 2, parallelagg.AdaptiveTwoPhase},
		{"never-plain2P", base.HashEntries, parallelagg.TwoPhase},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			prm := base
			prm.HashEntries = c.mem
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := parallelagg.Aggregate(prm, rel, c.alg, parallelagg.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Elapsed.Seconds()
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// Ablation: Graefe's Optimized 2P forwarding against the paper's A-2P
// (Section 3.2's three-point argument) on an overflowing workload.
func BenchmarkAblationOpt2PvsA2P(b *testing.B) {
	prm := benchParams()
	rel := parallelagg.Uniform(prm.N, prm.Tuples, 8000, 3)
	for _, alg := range []parallelagg.Algorithm{
		parallelagg.OptimizedTwoPhase, parallelagg.AdaptiveTwoPhase,
	} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Elapsed.Seconds()
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// Ablation: the A-Rep initial-segment length, the knob that decides how
// long a node watches before giving up on repartitioning.
func BenchmarkAblationARepInitSeg(b *testing.B) {
	prm := benchParams()
	rel := parallelagg.Uniform(prm.N, prm.Tuples, 8, 4) // few groups: fallback pays
	for _, initSeg := range []int{50, 200, 1000, 4000} {
		initSeg := initSeg
		b.Run(fmt.Sprintf("initSeg=%d", initSeg), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := parallelagg.Aggregate(prm, rel, parallelagg.AdaptiveRepartitioning,
					parallelagg.Options{InitSeg: initSeg})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Elapsed.Seconds()
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// Ablation: the Sampling crossover threshold (10×N vs the paper's 100×N)
// on a mid-range workload where the decision flips.
func BenchmarkAblationSamplingThreshold(b *testing.B) {
	prm := benchParams()
	rel := parallelagg.Uniform(prm.N, prm.Tuples, 500, 5)
	for _, mult := range []int{10, 100, 400} {
		mult := mult
		b.Run(fmt.Sprintf("threshold=%dxN", mult), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res, err := parallelagg.Aggregate(prm, rel, parallelagg.Sampling,
					parallelagg.Options{CrossoverThreshold: mult * prm.N})
				if err != nil {
					b.Fatal(err)
				}
				sim = res.Elapsed.Seconds()
			}
			b.ReportMetric(sim, "sim-s")
		})
	}
}

// BenchmarkLiveEngine measures the REAL (wall-clock) parallel engine: the
// paper's algorithms on actual goroutines, per worker count. Unlike every
// benchmark above, ns/op here is genuine multicore execution time.
func BenchmarkLiveEngine(b *testing.B) {
	const tuples, groups = 1_000_000, 50_000
	in := make([]live.Tuple, tuples)
	for i := range in {
		in[i] = live.Tuple{Key: live.Key(uint64(i*2654435761) % groups), Val: int64(i % 1000)}
	}
	for _, alg := range live.Algorithms() {
		for _, w := range []int{1, 2, 4} {
			alg, w := alg, w
			b.Run(fmt.Sprintf("%v/workers=%d", alg, w), func(b *testing.B) {
				b.SetBytes(tuples * 16)
				for i := 0; i < b.N; i++ {
					res, err := live.Aggregate(live.Config{Workers: w}, in, alg)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Groups) != groups {
						b.Fatalf("got %d groups", len(res.Groups))
					}
				}
			})
		}
	}
}

// Ablation: interconnect sensitivity — every algorithm on the shared-bus
// Ethernet versus the latency-only fast network.
func BenchmarkAblationNetwork(b *testing.B) {
	for _, net := range []struct {
		name string
		kind parallelagg.NetworkKind
	}{{"ethernet", parallelagg.SharedBusNet}, {"fast", parallelagg.LatencyNet}} {
		net := net
		for _, alg := range []parallelagg.Algorithm{parallelagg.TwoPhase, parallelagg.Repartitioning} {
			alg := alg
			b.Run(fmt.Sprintf("%s/%v", net.name, alg), func(b *testing.B) {
				prm := benchParams()
				prm.Network = net.kind
				rel := parallelagg.Uniform(prm.N, prm.Tuples, 2000, 6)
				var sim float64
				for i := 0; i < b.N; i++ {
					res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
					if err != nil {
						b.Fatal(err)
					}
					sim = res.Elapsed.Seconds()
				}
				b.ReportMetric(sim, "sim-s")
			})
		}
	}
}

// Extension experiments as benches, completing the one-bench-per-figure
// rule for the extensions too.
func BenchmarkExtOptimizerSensitivity(b *testing.B) { benchModelFigure(b, "ext-opt") }
func BenchmarkExtHashVsSort(b *testing.B)           { benchSimFigure(b, "ext-sort") }
func BenchmarkExtInputSkew(b *testing.B)            { benchSimFigure(b, "ext-inputskew") }
