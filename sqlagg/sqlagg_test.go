package sqlagg_test

import (
	"testing"

	"parallelagg/live"
	"parallelagg/sqlagg"
)

func TestPublicSQLQuery(t *testing.T) {
	tab := &sqlagg.Table{Schema: sqlagg.Schema{Cols: []sqlagg.Column{
		{Name: "dept", Type: sqlagg.String},
		{Name: "salary", Type: sqlagg.Int64},
	}}}
	rows := []struct {
		dept   string
		salary sqlagg.Value
	}{
		{"eng", sqlagg.IntVal(100)},
		{"eng", sqlagg.IntVal(140)},
		{"sales", sqlagg.IntVal(90)},
		{"sales", sqlagg.NullValue},
	}
	for _, r := range rows {
		if err := tab.Append(sqlagg.Row{sqlagg.StrVal(r.dept), r.salary}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sqlagg.Execute(tab, sqlagg.Query{
		GroupBy: []string{"dept"},
		Aggs: []sqlagg.Agg{
			{Func: sqlagg.CountStar, As: "n"},
			{Func: sqlagg.Avg, Col: "salary", As: "avg_salary"},
			{Func: sqlagg.Max, Col: "salary", As: "max_salary"},
		},
	}, live.Config{Workers: 2}, live.AdaptiveTwoPhase)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	eng := res.Rows[0]
	if eng[0].Str != "eng" || eng[1].Int != 2 || eng[2].Int != 120 || eng[3].Int != 140 {
		t.Errorf("eng row = %v", eng)
	}
	sales := res.Rows[1]
	if sales[1].Int != 2 || sales[2].Int != 90 {
		t.Errorf("sales row = %v (NULL salary must be ignored by AVG)", sales)
	}
	col, err := res.Col("n")
	if err != nil || len(col) != 2 {
		t.Errorf("Col(n) = %v, %v", col, err)
	}
}
