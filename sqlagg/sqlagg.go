// Package sqlagg re-exports the SQL-flavoured query layer: multi-column
// tables, GROUP BY over several columns, COUNT/SUM/AVG/MIN/MAX plus
// COUNT(DISTINCT)/SUM(DISTINCT) with SQL NULL semantics, WHERE pushed
// below the aggregation, HAVING applied after it, and ORDER BY/LIMIT for
// top-k results — executed on the live parallel engine.
//
//	res, err := sqlagg.Execute(table, sqlagg.Query{
//	    GroupBy: []string{"returnflag", "linestatus"},
//	    Aggs:    []sqlagg.Agg{{Func: sqlagg.Sum, Col: "quantity"}},
//	}, live.Config{}, live.AdaptiveTwoPhase)
package sqlagg

import (
	"parallelagg/internal/live"
	"parallelagg/internal/query"
)

// Column types.
type Type = query.Type

// Supported column types.
const (
	Int64  = query.Int64
	String = query.String
)

// Schema building blocks.
type (
	Column = query.Column
	Schema = query.Schema
	Value  = query.Value
	Row    = query.Row
	Table  = query.Table
)

// NullValue is the SQL NULL cell.
var NullValue = query.NullValue

// IntVal builds a non-null integer cell.
func IntVal(v int64) Value { return query.IntVal(v) }

// StrVal builds a non-null string cell.
func StrVal(v string) Value { return query.StrVal(v) }

// AggFunc is a SQL aggregate function.
type AggFunc = query.AggFunc

// The aggregate functions.
const (
	Count     = query.Count
	CountStar = query.CountStar
	Sum       = query.Sum
	Avg       = query.Avg
	Min       = query.Min
	Max       = query.Max
)

// Query building blocks.
type (
	Agg    = query.Agg
	Query  = query.Query
	Result = query.Result
)

// Execute runs the query on the table using the live parallel engine.
func Execute(t *Table, q Query, cfg live.Config, alg live.Algorithm) (*Result, error) {
	return query.Execute(t, q, cfg, alg)
}
