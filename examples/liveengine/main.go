// Live-engine example: the paper's algorithms as a real multicore GROUP
// BY. Measures wall-clock time and speedup over a sequential fold for
// 1..GOMAXPROCS workers, and shows the adaptive switch firing under a
// memory bound.
//
//	go run ./examples/liveengine
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"parallelagg/live"
)

func main() {
	const tuples = 4_000_000
	const groups = 100_000
	in := make([]live.Tuple, tuples)
	for i := range in {
		k := live.Key(uint64(i*2654435761) % groups)
		in[i] = live.Tuple{Key: k, Val: int64(i % 1000)}
	}

	// Sequential baseline.
	start := time.Now()
	ref := make(map[live.Key]live.AggState, groups)
	for _, t := range in {
		if s, ok := ref[t.Key]; ok {
			s.Update(t.Val)
			ref[t.Key] = s
		} else {
			ref[t.Key] = live.NewState(t.Val)
		}
	}
	seq := time.Since(start)
	fmt.Printf("sequential fold: %d tuples -> %d groups in %v\n\n", tuples, len(ref), seq)

	maxW := runtime.GOMAXPROCS(0)
	fmt.Printf("%-8s", "workers")
	for _, alg := range live.Algorithms() {
		fmt.Printf("  %-14s", alg)
	}
	fmt.Println()
	for w := 1; w <= maxW; w *= 2 {
		fmt.Printf("%-8d", w)
		for _, alg := range live.Algorithms() {
			start := time.Now()
			res, err := live.Aggregate(live.Config{Workers: w}, in, alg)
			if err != nil {
				log.Fatal(err)
			}
			el := time.Since(start)
			if len(res.Groups) != len(ref) {
				log.Fatalf("%v: got %d groups, want %d", alg, len(res.Groups), len(ref))
			}
			fmt.Printf("  %-6v x%-5.1f", el.Round(time.Millisecond), seq.Seconds()/el.Seconds())
		}
		fmt.Println()
	}

	// The adaptive switch under a memory bound.
	res, err := live.Aggregate(live.Config{Workers: maxW, TableEntries: 4096}, in, live.AdaptiveTwoPhase)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a %d-entry memory bound, A-2P switched %d of %d workers to repartitioning\n",
		4096, res.Switched, maxW)
}
