// Distributed example: the Adaptive Two Phase algorithm over REAL TCP
// connections, the way the paper ran it on eight PVM workstations. Four
// nodes start inside this process, each with its own loopback listener;
// they dial each other, exchange binary frames, and adapt per node under a
// memory bound — see cmd/distnode to run the same protocol as separate
// processes on separate machines.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"parallelagg"
	"parallelagg/internal/dist"
)

func main() {
	const nodes = 4
	rel := parallelagg.OutputSkew(nodes, 400_000, 20_000, 9)
	fmt.Printf("relation: %d tuples, %d groups, output-skewed across %d TCP nodes\n",
		rel.Tuples(), rel.Groups, nodes)
	fmt.Printf("nodes 0-%d hold ONE group each; the rest hold thousands\n\n", nodes/2-1)

	for _, alg := range []dist.Algorithm{dist.TwoPhase, dist.Repartitioning, dist.AdaptiveTwoPhase} {
		start := time.Now()
		groups, switched, err := dist.Run(rel.PerNode, alg, 2_000)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if int64(len(groups)) != rel.Groups {
			log.Fatalf("%v: got %d groups, want %d", alg, len(groups), rel.Groups)
		}
		fmt.Printf("%-5v  %8v wall-clock  %d groups", alg, elapsed.Round(time.Millisecond), len(groups))
		if switched > 0 {
			fmt.Printf("  (%d of %d nodes switched strategy)", switched, nodes)
		}
		fmt.Println()
	}
	fmt.Println("\nunder the memory bound only the group-heavy nodes switch —")
	fmt.Println("the paper's per-node adaptivity, over a real network stack.")
}
