// Quickstart: aggregate a uniformly distributed relation with the
// Adaptive Two Phase algorithm and print a few result groups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"parallelagg"
)

func main() {
	// An 8-node cluster on a 10 Mbit/s Ethernet, as in the paper's
	// implementation study, but with a smaller relation for a quick run.
	prm := parallelagg.ImplementationParams()
	prm.Tuples = 100_000

	// 100K tuples in 500 groups, declustered round-robin.
	rel := parallelagg.Uniform(prm.N, prm.Tuples, 500, 42)

	res, err := parallelagg.Aggregate(prm, rel, parallelagg.AdaptiveTwoPhase, parallelagg.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aggregated %d tuples into %d groups in %v of simulated time\n",
		rel.Tuples(), len(res.Groups), res.Elapsed)
	fmt.Printf("network: %d messages, %d bytes\n\n", res.Net.Messages, res.Net.Bytes)

	// Print the five smallest keys with their full aggregate state.
	keys := make([]parallelagg.Key, 0, len(res.Groups))
	for k := range res.Groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Println("key   count      sum     min  max      avg")
	for _, k := range keys[:5] {
		s := res.Groups[k]
		fmt.Printf("%3d   %5d  %7d  %6d  %3d  %7.2f\n", k, s.Count, s.Sum, s.Min, s.Max, s.Avg())
	}
}
