// Duplicate-elimination example: SELECT DISTINCT is aggregation where the
// result can be half the input. This is the regime the Repartitioning
// strategy exists for — local aggregation barely compresses, so the Two
// Phase family does all its work twice and overflows memory. Adaptive
// Repartitioning handles it without the optimizer needing to know the
// duplicate factor in advance.
//
//	go run ./examples/dupelim
package main

import (
	"fmt"
	"log"

	"parallelagg"
)

func main() {
	prm := parallelagg.ImplementationParams()
	prm.Tuples = 100_000
	prm.HashEntries = 1250

	for _, dup := range []int64{2, 20, 2000} {
		rel := parallelagg.DupElim(prm.N, prm.Tuples, dup, 5)
		fmt.Printf("DISTINCT over %d tuples with duplicate factor %d (%d distinct values)\n",
			rel.Tuples(), dup, rel.Groups)
		for _, alg := range []parallelagg.Algorithm{
			parallelagg.TwoPhase,
			parallelagg.Repartitioning,
			parallelagg.AdaptiveRepartitioning,
		} {
			res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
			if err != nil {
				log.Fatal(err)
			}
			note := ""
			if res.Switched > 0 {
				note = fmt.Sprintf("(fell back to two-phase on %d nodes)", res.Switched)
			}
			fmt.Printf("  %-6v %-10v %s\n", alg, res.Elapsed, note)
		}
		fmt.Println()
	}
	fmt.Println("At factor 2 (true dup-elim) Rep and A-Rep win; at factor 2000 the")
	fmt.Println("duplicates compress so well that A-Rep detects it and falls back.")
}
