// TPC-D example: the workload class that motivated the paper (15 of 17
// TPC-D queries aggregate). Runs a Q1-like query (GROUP BY returnflag,
// linestatus — 6 groups) and a Q3-like query (GROUP BY orderkey — one
// group per ~4 tuples) under every algorithm, showing how the best
// traditional strategy flips between the two queries while the adaptive
// algorithms stay near the winner on both.
//
//	go run ./examples/tpcd
package main

import (
	"fmt"
	"log"

	"parallelagg"
)

func main() {
	prm := parallelagg.ImplementationParams()
	prm.Tuples = 200_000
	prm.HashEntries = 1000 // scaled M so Q3 overflows, as at full size

	queries := []struct {
		name string
		q    parallelagg.TPCDQuery
	}{
		{"Q1-like (6 groups)", parallelagg.TPCDQ1},
		{"Q3-like (|R|/4 groups)", parallelagg.TPCDQ3},
	}

	for _, query := range queries {
		rel := parallelagg.TPCD(prm.N, prm.Tuples, query.q, 7)
		fmt.Printf("%s — %d tuples, %d groups\n", query.name, rel.Tuples(), rel.Groups)
		fmt.Println("  algorithm  time        switched  network-bytes")
		for _, alg := range parallelagg.Algorithms() {
			res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9v  %-10v  %-8d  %d\n", alg, res.Elapsed, res.Switched, res.Net.Bytes)
		}
		fmt.Println()
	}
	fmt.Println("Note how 2P wins the Q1 shape, Rep wins the Q3 shape, and the")
	fmt.Println("adaptive algorithms track the winner on both without being told.")
}
