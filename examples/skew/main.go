// Output-skew example (Section 6 of the paper): half the nodes hold a
// single group each while the other half hold thousands. The adaptive
// algorithms let each node pick its own strategy — the single-group nodes
// keep aggregating locally while the group-heavy nodes switch to
// repartitioning — and beat BOTH traditional algorithms, something no
// static choice can do.
//
//	go run ./examples/skew
package main

import (
	"fmt"
	"log"

	"parallelagg"
)

func main() {
	prm := parallelagg.ImplementationParams()
	prm.Tuples = 100_000
	prm.HashEntries = 1250 // paper's data:memory ratio at this scale

	rel := parallelagg.OutputSkew(prm.N, prm.Tuples, 4000, 11)
	fmt.Printf("output-skewed relation: %d tuples, %d groups, %d nodes\n",
		rel.Tuples(), rel.Groups, prm.N)
	fmt.Printf("nodes 0-%d hold ONE group each; nodes %d-%d share the rest\n\n",
		prm.N/2-1, prm.N/2, prm.N-1)

	type row struct {
		alg      parallelagg.Algorithm
		elapsed  parallelagg.Duration
		switched int
	}
	var rows []row
	for _, alg := range parallelagg.Algorithms() {
		res, err := parallelagg.Aggregate(prm, rel, alg, parallelagg.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{alg, res.Elapsed, res.Switched})
	}

	fmt.Println("algorithm  time        nodes-switched")
	best := rows[0]
	for _, r := range rows {
		fmt.Printf("%-9v  %-10v  %d\n", r.alg, r.elapsed, r.switched)
		if r.elapsed < best.elapsed {
			best = r
		}
	}
	fmt.Printf("\nwinner: %v — ", best.alg)
	if best.alg == parallelagg.AdaptiveTwoPhase || best.alg == parallelagg.AdaptiveRepartitioning {
		fmt.Println("per-node adaptivity beats every static strategy under output skew,")
		fmt.Println("exactly as the paper's Figure 9 reports.")
	} else {
		fmt.Println("unexpected; the adaptive algorithms should win this workload.")
	}
}
