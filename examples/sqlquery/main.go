// SQL example: the full query shape of Section 2 of the paper — GROUP BY
// over two columns with multiple aggregates, a WHERE below the aggregation
// and a HAVING above it — executed on the live parallel engine. The query
// is a miniature TPC-D Q1.
//
//	go run ./examples/sqlquery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"parallelagg/live"
	"parallelagg/sqlagg"
)

func main() {
	// lineitem(returnflag, linestatus, quantity, extendedprice)
	tab := &sqlagg.Table{Schema: sqlagg.Schema{Cols: []sqlagg.Column{
		{Name: "returnflag", Type: sqlagg.String},
		{Name: "linestatus", Type: sqlagg.String},
		{Name: "quantity", Type: sqlagg.Int64},
		{Name: "extendedprice", Type: sqlagg.Int64},
	}}}
	rng := rand.New(rand.NewSource(1))
	flags := []string{"A", "N", "R"}
	statuses := []string{"F", "O"}
	const rows = 200_000
	for i := 0; i < rows; i++ {
		qty := sqlagg.IntVal(1 + rng.Int63n(50))
		if rng.Intn(100) == 0 {
			qty = sqlagg.NullValue // the occasional SQL NULL
		}
		tab.Append(sqlagg.Row{
			sqlagg.StrVal(flags[rng.Intn(3)]),
			sqlagg.StrVal(statuses[rng.Intn(2)]),
			qty,
			sqlagg.IntVal(900 + rng.Int63n(100_000)),
		})
	}

	// SELECT returnflag, linestatus, COUNT(*), SUM(quantity),
	//        AVG(quantity), SUM(extendedprice)
	// FROM lineitem
	// WHERE quantity IS NULL OR quantity <= 45
	// GROUP BY returnflag, linestatus
	// HAVING COUNT(*) > 1000
	qtyIdx := tab.Schema.Index("quantity")
	res, err := sqlagg.Execute(tab, sqlagg.Query{
		GroupBy: []string{"returnflag", "linestatus"},
		Aggs: []sqlagg.Agg{
			{Func: sqlagg.CountStar, As: "count_order"},
			{Func: sqlagg.Sum, Col: "quantity", As: "sum_qty"},
			{Func: sqlagg.Avg, Col: "quantity", As: "avg_qty"},
			{Func: sqlagg.Sum, Col: "extendedprice", As: "sum_price"},
		},
		Where: func(r sqlagg.Row) bool {
			return r[qtyIdx].Null || r[qtyIdx].Int <= 45
		},
		Having: func(r sqlagg.Row) bool {
			return r[2].Int > 1000 // count_order
		},
	}, live.Config{}, live.AdaptiveTwoPhase)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("returnflag  linestatus  count_order   sum_qty  avg_qty    sum_price")
	for _, r := range res.Rows {
		fmt.Printf("%-10s  %-10s  %11d  %8d  %7d  %11d\n",
			r[0].Str, r[1].Str, r[2].Int, r[3].Int, r[4].Int, r[5].Int)
	}
	fmt.Printf("\n%d groups (of 6) survived HAVING; aggregates computed by the\n", len(res.Rows))
	fmt.Println("Adaptive Two Phase algorithm across all CPU cores.")
}
